(** Composable fault injection for PSIOA and PCA.

    The paper's motivation is that dynamic creation/destruction
    (Definitions 2.12/2.14) and the emulation slack [ε] survive hostile
    contexts, yet faults are usually modelled ad hoc per example (the
    committee's hand-rolled [crash] input). This module makes adversarial
    interference a {e library-level combinator}, in the spirit of the
    task-PIOA line where the adversary is an ordinary composable component:

    - {!crash_stop} / {!crash_recover} wrap any PSIOA with crash (and
      recover) actions. The dead state keeps absorbing the inputs of the
      crash-time signature while its locally controlled actions vanish —
      the signature {e shrinks} exactly as Definition 2.1's state-dependent
      signatures allow, and composition partners stay compatible.
    - {!compromise} wraps any PSIOA with a mid-run {e takeover}: a
      scheduled [compromise] input swaps the member's transition function
      for an adversary-controlled one over the same state space (and
      [restore] swaps back) — components that turn bad, not merely
      crash. {!compromise_budget} caps takeovers at k-of-n.
    - {!lossy_channel} / {!dup_channel} / {!delay_channel} interpose an
      adversarial channel PSIOA between two components: the sender's
      outputs are {!Rename}d onto a wire, the channel re-emits them, and
      drop/duplicate/reorder faults are ordinary locally controlled
      actions that any scheduler interleaves and {!Cdse_sched.Measure}
      quantifies exactly.
    - {!injector} turns free fault inputs (such as the committee's
      [crash_i]) into scheduler-visible outputs of a composed component.
    - {!budget} caps the {e total} number of injected faults across a
      whole scheduler schema, so "commit probability under ≤ k crashes"
      is a single exact [reach_prob] query.

    Every fault action follows the naming conventions recognized by
    {!default_is_fault}, so budgets work across combinators without
    registration. *)

open Cdse_psioa
open Cdse_sched

(** {2 Crash transformers} *)

val crash_action : string -> Action.t
(** [crash_action n] is the conventional crash input [n ^ ".crash"]. *)

val recover_action : string -> Action.t
(** [recover_action n] is [n ^ ".recover"]. *)

val crash_stop : ?crash:Action.t -> Psioa.t -> Psioa.t
(** [crash_stop a] wraps [a] with a crash-stop fault: every live state
    gains [crash] (default {!crash_action} on the automaton name) as an
    input; firing it moves to a dead state that remembers the crash-time
    state, absorbs (self-loops) the inputs that were enabled there, and
    has no locally controlled actions. With zero crashes injected the
    wrapper is trace-equivalent to [a] (the extra input is free and the
    standard schedulers never fire inputs). Raises
    {!Sigs.Not_disjoint} lazily if [crash] collides with a locally
    controlled action of [a]. *)

val crash_recover :
  ?crash:Action.t -> ?recover:Action.t -> ?reboot:(Value.t -> Value.t) -> Psioa.t -> Psioa.t
(** Like {!crash_stop}, but the dead state also accepts [recover]
    (default {!recover_action}), returning to [reboot q] where [q] is the
    crash-time state (default: the start state — a reboot loses volatile
    state). *)

(** {2 Dynamic compromise}

    Components that {e turn adversarial mid-run} — the threat model of the
    dynamic-compromise literature, where a member is not merely crashed
    but taken over: its transition function is swapped for an
    adversary-controlled one at a scheduled point, and the protocol must
    keep emulating its ideal functionality as long as at most [k] of [n]
    members are compromised. *)

val compromise_action : string -> Action.t
(** [compromise_action n] is the conventional takeover input
    [n ^ ".compromise"]. *)

val restore_action : string -> Action.t
(** [restore_action n] is [n ^ ".restore"]. *)

val compromise :
  ?compromise:Action.t -> ?restore:Action.t -> adversarial:Psioa.t -> Psioa.t -> Psioa.t
(** [compromise ~adversarial a] wraps [a] with a mid-run takeover: every
    honest state gains [compromise] (default {!compromise_action} on the
    automaton name) as an input; firing it swaps the transition function
    for [adversarial]'s {e at the same underlying state}, and the evil
    states accept [restore] to swap back. [adversarial] must share [a]'s
    state space (it is an adversarial reinterpretation of the member —
    e.g. a leaky cipher over the honest protocol's states, or
    {!Cdse_secure.Adversary.silent_takeover}[ a]); the swap is then the
    identity on states and signatures stay per-state disciplined
    (Definition 2.1), so composition, [hidden_system] and
    [Emulation.check] apply unchanged.

    Signature emptiness is preserved in both modes: a destroyed member
    offers neither extra input, so PCA configuration reduction still
    removes it, and with zero compromises injected the wrapper is
    trace-equivalent to [a] (the extra input is free; standard schedulers
    never fire inputs). Compose with {!injector} over the compromise
    actions to put takeovers under scheduler control, and meter them with
    {!compromise_budget}. Raises {!Sigs.Not_disjoint} lazily if an extra
    input collides with a locally controlled action. *)

val is_compromised : Value.t -> Value.t option
(** The underlying state if the wrapper state is currently adversarial. *)

(** {2 Channel interposition}

    [lossy_channel ~name ~acts ()] builds an adversarial channel PSIOA
    whose inputs are the {!wire}-renamed versions of [acts] and whose
    outputs re-emit the original actions in FIFO order. Interpose it with
    {!via}: the sender's outputs in [acts] are renamed onto the wire, the
    channel is composed in between, and the wire actions are hidden —
    faults become locally controlled actions of the composite. All three
    channels are input-enabled: a message arriving on a full buffer
    (capacity [cap], default 8) is absorbed, so size [cap] above the
    workload when lossless transport matters. *)

val wire : channel:string -> Action.t -> Action.t
(** The on-the-wire renaming of an interposed action: the name becomes
    [channel ^ "/" ^ name] (payload untouched). Injective for any fixed
    channel name. *)

val lossy_channel : ?cap:int -> name:string -> acts:Action.t list -> unit -> Psioa.t
(** FIFO relay with a [name ^ ".drop"] internal fault that discards the
    buffer head. Zero drops = perfect FIFO transport. *)

val dup_channel : ?cap:int -> name:string -> acts:Action.t list -> unit -> Psioa.t
(** FIFO relay with a [name ^ ".dup"] internal fault that duplicates the
    buffer head (delivered twice, in order). *)

val delay_channel : ?cap:int -> name:string -> acts:Action.t list -> unit -> Psioa.t
(** FIFO relay with a [name ^ ".skip"] internal fault that rotates the
    buffer head to the tail: [k] skips buy arbitrary reordering/delay at
    a budget of [k] fault actions. *)

val via : ?name:string -> channel:Psioa.t -> acts:Action.t list -> Psioa.t -> Psioa.t -> Psioa.t
(** [via ~channel ~acts sender receiver]: rename [sender]'s outputs in
    [acts] onto [channel]'s wire, compose
    [sender' ‖ channel ‖ receiver], and hide the wire actions
    (Definition 2.7) so only the delivered actions stay external. *)

(** {2 Fault injection for free inputs} *)

val injector : ?name:string -> ?each:int -> faults:Action.t list -> unit -> Psioa.t
(** An adversary PSIOA whose outputs are exactly [faults], each fired at
    most [each] times (default 1). Composing it with an automaton that
    has those actions as free inputs (e.g. the committee's [crash_i])
    makes the faults locally controlled, so the standard schedulers
    interleave them and {!budget} can meter them. The injector's
    signature empties once every fault is spent. *)

(** {2 Budgets} *)

type kind = Crash | Recover | Drop | Dup | Skip | Compromise | Restore
(** The library's fault-action kinds, as counted by the [fault.*]
    observability counters ({!Cdse_obs.Obs}). *)

val kind_name : kind -> string
(** Lowercase name, as used in action suffixes and counter names. *)

val fault_kind : Action.t -> kind option
(** Structural classification of an action name by its final dotted
    component: [crash]/[recover]/[compromise]/[restore] with an optional
    trailing numeric instance index ([n.crash], [n.crash3]), and the exact
    channel-fault suffixes [drop]/[dup]/[skip]. Names like
    [report.crash_count], [x.recovery], [sys.compromised] or [dropout]
    are {e not} faults. *)

val default_is_fault : Action.t -> bool
(** [fault_kind a <> None] — the default fault predicate of
    {!count_faults}, {!budget_sched} and {!budget}. *)

val is_compromise : Action.t -> bool
(** [fault_kind a = Some Compromise] — the predicate metered by
    {!compromise_budget}. Restores are deliberately {e not} counted: the
    k-of-n budget caps takeovers, and handing a member back never costs
    the adversary anything. *)

val substring_is_fault : Action.t -> bool
(** The pre-structural heuristic (a name {e containing} [".crash"] or
    [".recover"], or ending in [".drop"]/[".dup"]/[".skip"]), kept for
    callers whose fault actions end up mid-name after renaming. Beware:
    it misclassifies ordinary actions such as [report.crash_count]; pass
    it explicitly as [~is_fault] if you need it. *)

val count_faults : ?is_fault:(Action.t -> bool) -> Exec.t -> int
(** Number of fault actions along an execution fragment. *)

val budget_sched : ?is_fault:(Action.t -> bool) -> int -> Scheduler.t -> Scheduler.t
(** [budget_sched k σ] behaves as [σ] until [k] fault actions have been
    scheduled, then conditions every later choice on the non-fault
    support (renormalized to the choice's original mass, so halting
    probability is unchanged and liveness of the non-faulty protocol is
    preserved). When a post-budget choice is {e all} faults there is no
    non-faulty support to condition on: the scheduler halts deliberately
    — the choice becomes empty with deficit 1 and the measure engine
    books the execution's remaining mass as halting mass, keeping the
    total measure proper. Each such halt increments the
    [fault.budget.halt] counter. *)

val budget : ?is_fault:(Action.t -> bool) -> int -> Schema.t -> Schema.t
(** The schema transformer (Definition 3.2): every scheduler the schema
    produces is wrapped by {!budget_sched}, capping total injected faults
    at [k] across the whole quantification domain. *)

val budget_first_enabled :
  ?is_fault:(Action.t -> bool) -> ?avoid:(Action.t -> bool) -> int -> Psioa.t -> Scheduler.t
(** The deterministic budgeted scheduler: the least locally controlled
    enabled action that is neither in [avoid] (default: nothing) nor a
    spent fault — a fault action is eligible only while fewer than [k]
    faults occurred along the history. Unlike {!budget_sched} over
    {!Scheduler.first_enabled} (whose dirac choice on a spent fault
    filters to a deliberate halt), the budget participates in the pick
    itself, so at budget the scheduler continues as first-enabled of the
    fault-free protocol. [avoid] excludes actions wholesale (e.g. the
    committee's [retire] outputs, which would otherwise deterministically
    shrink the membership before any block is submitted). Not memoryless:
    the choice depends on the history's fault count. *)

val compromise_budget : ?avoid:(Action.t -> bool) -> int -> Schema.t
(** The k-of-n compromise cap as a one-scheduler schema:
    [budget_first_enabled ~is_fault:is_compromise k] — at most [k]
    takeovers ({!is_compromise} actions) along any schedule, restores
    uncounted. Used by experiment E18 to sweep [k] against a protocol's
    tolerance threshold. *)
