(** Seeded random configuration automata.

    Builds registries mixing self-destructing counters, probabilistically
    dying fragiles, coins and spawners, with a deterministic pseudo-random
    creation mapping — every transition may create fresh members and
    destroy expiring ones. Used by the randomized property suite to check
    the PCA constraints (Definition 2.16) and their closure under
    composition (Definition 2.19) on arbitrary instances. *)

open Cdse_prob
open Cdse_config

val make :
  rng:Rng.t -> ?n_members:int -> ?prefix:string -> ?faults:bool -> unit -> Pca.t
(** A random canonical PCA with [n_members] (default 4) registry members,
    a random initial sub-configuration, and a hash-derived created
    mapping. All member/action names carry [prefix] (default ["r"]), so
    PCAs with distinct prefixes are composable.

    [~faults:true] (default [false]) additionally wraps a random subset of
    members with {!Cdse_fault.Fault.crash_stop} / [crash_recover] and adds
    a {!Cdse_fault.Fault.injector} adversary (always in the initial
    configuration) firing each crash/recover input at most once, so faults
    are locally controlled and every scheduler can interleave them with
    the run-time creation/destruction churn. [~faults:false] draws exactly
    the same random choices as before the flag existed — byte-identical
    PCAs for a given seed. *)
