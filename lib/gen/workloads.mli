(** Deterministic workload automata shared by the test suites and the
    benchmark harness (deliverable (d): workload generators).

    Each generator produces a small PSIOA whose exact execution measures
    can be computed by hand. Automata are namespaced by their [name]
    argument, so independently named instances are pairwise compatible. *)

open Cdse_prob
open Cdse_psioa

val act : ?payload:Value.t -> string -> Action.t
(** Convenience action constructor. *)

val sig_io :
  ?i:Action.t list -> ?o:Action.t list -> ?h:Action.t list -> unit -> Sigs.t
(** Convenience signature constructor ([h] = internal/hidden). *)

val coin : ?p:Rat.t -> ?flip_internal:bool -> string -> Psioa.t
(** One (possibly biased) flip — internal by default — then the automaton
    forever announces [name.heads] or [name.tails]. Three states. *)

val counter : ?bound:int -> string -> Psioa.t
(** Emits [name.inc] until the bound, then its signature becomes {e empty}:
    the canonical self-destructing automaton for configuration reduction
    (Definition 2.12). *)

val channel : ?alphabet:int list -> string -> Psioa.t
(** One-slot channel: input [name.send(m)] when empty, output
    [name.recv(m)] when full. *)

val sender : channel_name:string -> ?script:int list -> string -> Psioa.t
(** Pushes the scripted messages into a channel's [send] inputs, then
    stops. *)

val receiver : channel_name:string -> ?alphabet:int list -> string -> Psioa.t
(** Consumes a channel's [recv] outputs, remembering the messages seen. *)

val acceptor : watch:(string * Value.t option) list -> string -> Psioa.t
(** The canonical distinguishing environment: waits for any watched action
    (as input), then outputs [acc] — the observation the [accept] insight
    (Definition 3.4) reports. *)

val spawner : ?max_children:int -> string -> Psioa.t
(** Emits [name.spawn] outputs while below its budget; PCA-level created
    mappings turn each spawn into the creation of a child automaton. *)

val fragile : ?p_die:Rat.t -> string -> Psioa.t
(** Its single output kills it with probability [p_die] (default 1/2),
    moving it to an empty-signature state — probabilistic destruction. *)

val broken_no_transition : string -> Psioa.t
(** Failure-injection fixture: an enabled action without a transition
    (violates action enabling, Definition 2.1). *)

val broken_improper : string -> Psioa.t
(** Failure-injection fixture: a transition measure of mass 1/2. *)

val fifo : ?capacity:int -> ?alphabet:int list -> string -> Psioa.t
(** n-slot FIFO channel: accepts [name.send(m)] while below capacity,
    offers [name.recv(m)] for the oldest message. *)

val timer : ?horizon:int -> string -> Psioa.t
(** Ticks internally [horizon] times, then fires [name.timeout] once. *)

val faulty_channel : seed:int -> Psioa.t
(** Via-spliced faulty channel feeding a compromisable receiver: a
    3-message sender behind a lossy (even [seed]) or reordering delay
    (odd [seed]) channel, with the receiver's adversarial takeover under
    scheduler control through a fault injector. The robustness corner of
    the conformance corpus; callers typically meter the channel faults
    and takeovers together with {!Cdse_fault.Fault.budget_sched}. *)

val random_walk : ?span:int -> string -> Psioa.t
(** Lazy ±1 random walk on [0..span] (clamped), driven by an internal
    step — an unbounded-depth probabilistic measure workload. *)
