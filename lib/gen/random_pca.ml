open Cdse_prob
open Cdse_psioa
open Cdse_config
module Fault = Cdse_fault.Fault

let make ~rng ?(n_members = 4) ?(prefix = "r") ?(faults = false) () =
  let member i =
    let name = Printf.sprintf "%s%d" prefix i in
    match Rng.int rng 3 with
    | 0 -> Workloads.counter ~bound:(1 + Rng.int rng 3) name
    | 1 -> Workloads.fragile ~p_die:(Rat.of_ints 1 (2 + Rng.int rng 3)) name
    | _ -> Workloads.spawner ~max_children:(1 + Rng.int rng 2) name
  in
  let base_members = List.init n_members member in
  (* With [~faults:true] a random subset of members is wrapped with crash
     faults from [lib/fault], and an injector adversary joins the registry
     to fire the crash/recover inputs — making the faults locally
     controlled, hence schedulable by the standard schedulers. All the
     extra randomness is drawn only on this path, so [~faults:false] is
     byte-identical to the historical generator. *)
  let members, fault_acts =
    if not faults then (base_members, [])
    else
      let wrapped =
        List.map
          (fun m ->
            let name = Psioa.name m in
            match Rng.int rng 3 with
            | 0 -> (m, [])
            | 1 -> (Fault.crash_stop m, [ Fault.crash_action name ])
            | _ ->
                ( Fault.crash_recover m,
                  [ Fault.crash_action name; Fault.recover_action name ] ))
          base_members
      in
      (List.map fst wrapped, List.concat_map snd wrapped)
  in
  let injector =
    if fault_acts = [] then []
    else [ Fault.injector ~name:(prefix ^ "-inj") ~each:1 ~faults:fault_acts () ]
  in
  let registry = Registry.of_list (members @ injector) in
  let ids = List.map Psioa.name members in
  let initial_ids =
    let picked =
      match List.filter (fun _ -> Rng.bool rng) ids with
      | [] -> [ List.hd ids ]
      | l -> l
    in
    (* The injector is always live: faults can strike from the start, and
       churn never creates or destroys the adversary. *)
    picked @ List.map Psioa.name injector
  in
  (* Deterministic pseudo-random creation: the action name hash selects
     which absent members an action creates. Derived purely from the
     action, so the mapping is a function (as Definition 2.16 requires). *)
  let created config a =
    let h = Hashtbl.hash (Action.name a) in
    List.filteri
      (fun i id -> (not (Config.mem config id)) && (h lsr i) land 3 = 0)
      ids
  in
  Pca.make
    ~name:(prefix ^ "-pca")
    ~registry
    ~init:(Config.start_of registry initial_ids)
    ~created ()
