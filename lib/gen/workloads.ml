(** Deterministic workload automata shared by the test suites and the
    benchmark harness (deliverable (d): workload generators).

    Small, fully explicit PSIOAs whose exact execution measures can be
    computed by hand, used across the psioa/sched/config/secure tests. *)

open Cdse_prob
open Cdse_psioa

let act ?payload name = Action.make ?payload name

let sig_io ?(i = []) ?(o = []) ?(h = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:(Action_set.of_list h)

(* -------------------------------------------------------------------- *)
(* Fair (or biased) coin: one internal flip, then forever announce the
   outcome as an output.

   init --flip(int)--> heads | tails;  heads --out_heads--> heads (loop)   *)

let coin ?(p = Rat.half) ?(flip_internal = true) name =
  let init = Value.tag "init" Value.unit in
  let heads = Value.tag "heads" Value.unit in
  let tails = Value.tag "tails" Value.unit in
  let flip = act (name ^ ".flip") in
  let out_heads = act (name ^ ".heads") in
  let out_tails = act (name ^ ".tails") in
  let signature q =
    if Value.equal q init then
      if flip_internal then sig_io ~h:[ flip ] () else sig_io ~o:[ flip ] ()
    else if Value.equal q heads then sig_io ~o:[ out_heads ] ()
    else sig_io ~o:[ out_tails ] ()
  in
  let transition q a =
    if Value.equal q init && Action.equal a flip then Some (Vdist.coin ~p heads tails)
    else if Value.equal q heads && Action.equal a out_heads then Some (Vdist.dirac heads)
    else if Value.equal q tails && Action.equal a out_tails then Some (Vdist.dirac tails)
    else None
  in
  Psioa.make ~name ~start:init ~signature ~transition

(* -------------------------------------------------------------------- *)
(* Bounded counter: output inc until the bound, then the signature becomes
   EMPTY — the canonical "self-destructing" automaton for configuration
   reduction (Definition 2.12). *)

let counter ?(bound = 3) name =
  let inc = act (name ^ ".inc") in
  let state k = Value.tag "ctr" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("ctr", Value.Int k) when k < bound -> sig_io ~o:[ inc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ctr", Value.Int k) when k < bound && Action.equal a inc ->
        Some (Vdist.dirac (state (k + 1)))
    | _ -> None
  in
  Psioa.make ~name ~start:(state 0) ~signature ~transition

(* -------------------------------------------------------------------- *)
(* One-slot channel over a small message alphabet: input send(m) when
   empty, output recv(m) when holding m. *)

let channel ?(alphabet = [ 0; 1 ]) name =
  let empty = Value.tag "empty" Value.unit in
  let full m = Value.tag "full" (Value.int m) in
  let send m = act ~payload:(Value.int m) (name ^ ".send") in
  let recv m = act ~payload:(Value.int m) (name ^ ".recv") in
  let signature q =
    match q with
    | Value.Tag ("empty", _) -> sig_io ~i:(List.map send alphabet) ()
    | Value.Tag ("full", Value.Int m) -> sig_io ~o:[ recv m ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match (q, a.Action.payload) with
    | Value.Tag ("empty", _), Value.Int m
      when List.mem m alphabet && Action.equal a (send m) ->
        Some (Vdist.dirac (full m))
    | Value.Tag ("full", Value.Int m), Value.Int m' when m = m' && Action.equal a (recv m) ->
        Some (Vdist.dirac empty)
    | _ -> None
  in
  Psioa.make ~name ~start:empty ~signature ~transition

(* -------------------------------------------------------------------- *)
(* Sender: emits each message of a script through channel inputs
   [chan.send(m)], then stops. *)

let sender ~channel_name ?(script = [ 0; 1 ]) name =
  let state k = Value.tag "snd" (Value.int k) in
  let send m = act ~payload:(Value.int m) (channel_name ^ ".send") in
  let n = List.length script in
  let signature q =
    match q with
    | Value.Tag ("snd", Value.Int k) when k < n -> sig_io ~o:[ send (List.nth script k) ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("snd", Value.Int k) when k < n && Action.equal a (send (List.nth script k)) ->
        Some (Vdist.dirac (state (k + 1)))
    | _ -> None
  in
  Psioa.make ~name ~start:(state 0) ~signature ~transition

(* -------------------------------------------------------------------- *)
(* Receiver: consumes recv(m) inputs, remembers the messages seen. *)

let receiver ~channel_name ?(alphabet = [ 0; 1 ]) name =
  let state ms = Value.tag "rcv" (Value.list (List.map Value.int ms)) in
  let recv m = act ~payload:(Value.int m) (channel_name ^ ".recv") in
  let signature _ = sig_io ~i:(List.map recv alphabet) () in
  let transition q a =
    match (q, a.Action.payload) with
    | Value.Tag ("rcv", Value.List ms), Value.Int m
      when List.mem m alphabet && Action.equal a (recv m) ->
        Some (Vdist.dirac (state (List.map (function Value.Int i -> i | _ -> 0) ms @ [ m ])))
    | _ -> None
  in
  Psioa.make ~name ~start:(state []) ~signature ~transition

(* -------------------------------------------------------------------- *)
(* Accept-environment: watches for a given action name (as input) and then
   outputs "acc" — the canonical distinguishing environment for the accept
   insight. *)

let acceptor ~watch name =
  let idle = Value.tag "idle" Value.unit in
  let seen = Value.tag "seen" Value.unit in
  let fired = Value.tag "fired" Value.unit in
  let acc = act "acc" in
  let signature q =
    if Value.equal q idle then sig_io ~i:(List.map (fun (n, p) -> act ?payload:p n) watch) ()
    else if Value.equal q seen then sig_io ~o:[ acc ] ()
    else Sigs.empty
  in
  let transition q a =
    if Value.equal q idle && List.exists (fun (n, p) -> Action.equal a (act ?payload:p n)) watch
    then Some (Vdist.dirac seen)
    else if Value.equal q seen && Action.equal a acc then Some (Vdist.dirac fired)
    else None
  in
  Psioa.make ~name ~start:idle ~signature ~transition

(* A deliberately broken automaton: enabled action without transition. *)
let broken_no_transition name =
  let a = act (name ^ ".go") in
  Psioa.make ~name ~start:Value.unit
    ~signature:(fun _ -> sig_io ~o:[ a ] ())
    ~transition:(fun _ _ -> None)

(* A deliberately broken automaton: transition measure of mass 1/2. *)
let broken_improper name =
  let a = act (name ^ ".go") in
  Psioa.make ~name ~start:Value.unit
    ~signature:(fun _ -> sig_io ~o:[ a ] ())
    ~transition:(fun q act' ->
      if Action.equal a act' then Some (Vdist.make [ (q, Rat.half) ]) else None)

(* -------------------------------------------------------------------- *)
(* Spawner: emits spawn outputs while below its budget; the PCA layer maps
   each spawn to the creation of a child automaton. *)

let spawner ?(max_children = 3) name =
  let state k = Value.tag "spawned" (Value.int k) in
  let spawn = act (name ^ ".spawn") in
  let signature q =
    match q with
    | Value.Tag ("spawned", Value.Int k) when k < max_children -> sig_io ~o:[ spawn ] ()
    | _ -> sig_io ()
  in
  let transition q a =
    match q with
    | Value.Tag ("spawned", Value.Int k) when k < max_children && Action.equal a spawn ->
        Some (Vdist.dirac (state (k + 1)))
    | _ -> None
  in
  Psioa.make ~name ~start:(state 0) ~signature ~transition

(* Fragile: its single output action kills it with probability p (moving it
   to an empty-signature state, destroyed by configuration reduction). *)

let fragile ?(p_die = Rat.half) name =
  let alive = Value.tag "alive" Value.unit in
  let dead = Value.tag "dead" Value.unit in
  let go = act (name ^ ".go") in
  let signature q = if Value.equal q alive then sig_io ~o:[ go ] () else Sigs.empty in
  let transition q a =
    if Value.equal q alive && Action.equal a go then Some (Vdist.coin ~p:p_die dead alive)
    else None
  in
  Psioa.make ~name ~start:alive ~signature ~transition

(* -------------------------------------------------------------------- *)
(* n-slot FIFO channel: send when not full, receive in order. A deeper
   buffer than the one-slot channel, for pipeline workloads. *)

let fifo ?(capacity = 2) ?(alphabet = [ 0; 1 ]) name =
  let state ms = Value.tag "fifo" (Value.list (List.map Value.int ms)) in
  let send m = act ~payload:(Value.int m) (name ^ ".send") in
  let recv m = act ~payload:(Value.int m) (name ^ ".recv") in
  let parse = function
    | Value.Tag ("fifo", Value.List l) ->
        Some (List.filter_map (function Value.Int i -> Some i | _ -> None) l)
    | _ -> None
  in
  let signature q =
    match parse q with
    | None -> Sigs.empty
    | Some ms ->
        sig_io
          ~i:(if List.length ms < capacity then List.map send alphabet else [])
          ~o:(match ms with [] -> [] | m :: _ -> [ recv m ])
          ()
  in
  let transition q a =
    match parse q with
    | None -> None
    | Some ms -> (
        match ms with
        | m :: rest when Action.equal a (recv m) -> Some (Vdist.dirac (state rest))
        | _ ->
            if List.length ms < capacity then
              List.find_map
                (fun m -> if Action.equal a (send m) then Some (Vdist.dirac (state (ms @ [ m ]))) else None)
                alphabet
            else None)
  in
  Psioa.make ~name ~start:(state []) ~signature ~transition

(* Timer: ticks internally for [horizon] steps, then fires a timeout
   output and stops — the standard liveness-cutoff component. *)

let timer ?(horizon = 3) name =
  let tick = act (name ^ ".tick") in
  let fire = act (name ^ ".timeout") in
  let state k = Value.tag "timer" (Value.int k) in
  let signature q =
    match q with
    | Value.Tag ("timer", Value.Int k) when k < horizon -> sig_io ~h:[ tick ] ()
    | Value.Tag ("timer", Value.Int k) when k = horizon -> sig_io ~o:[ fire ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("timer", Value.Int k) when k < horizon && Action.equal a tick ->
        Some (Vdist.dirac (state (k + 1)))
    | Value.Tag ("timer", Value.Int k) when k = horizon && Action.equal a fire ->
        Some (Vdist.dirac (state (k + 1)))
    | _ -> None
  in
  Psioa.make ~name ~start:(state 0) ~signature ~transition

(* Lazy random walk on 0..span: each internal step moves ±1 with equal
   probability (clamped at the borders). An unbounded-depth probabilistic
   workload for measure benchmarks. *)

(* Via-spliced faulty channel feeding a compromisable receiver (the
   robustness corner of the conformance corpus, also served as a named
   model by the cdse_serve daemon): a 3-message sender talks to an
   acking receiver through a lossy channel (even seeds) or a reordering
   delay channel (odd seeds), and an injector puts the receiver's
   takeover under scheduler control. Callers typically meter channel
   faults and takeovers together with [Fault.budget_sched]. *)

let faulty_channel ~seed =
  let module Fault = Cdse_fault.Fault in
  let msg n = Action.make ~payload:(Value.int n) "s.msg" in
  let acts = List.init 3 msg in
  let sender =
    Psioa.make ~name:"s" ~start:(Value.int 0)
      ~signature:(fun q ->
        match q with
        | Value.Int n when n < 3 ->
            Sigs.make ~input:Action_set.empty
              ~output:(Action_set.of_list [ msg n ])
              ~internal:Action_set.empty
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Int n when n < 3 && Action.equal a (msg n) ->
            Some (Vdist.dirac (Value.int (n + 1)))
        | _ -> None)
  in
  (* Counts deliveries; from two on it also acks — a locally controlled
     action that [Adversary.silent_takeover] silences, so a takeover is
     visible in the execution measure, not just in the state. *)
  let ack = Action.make "r.ack" in
  let receiver =
    Psioa.make ~name:"r" ~start:(Value.int 0)
      ~signature:(fun q ->
        match q with
        | Value.Int n when n < 6 ->
            Sigs.make
              ~input:(Action_set.of_list acts)
              ~output:(if n >= 2 then Action_set.of_list [ ack ] else Action_set.empty)
              ~internal:Action_set.empty
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Int n when n < 6 ->
            if Action.equal a ack then Some (Vdist.dirac q)
            else if List.exists (Action.equal a) acts then
              Some (Vdist.dirac (Value.int (n + 1)))
            else None
        | _ -> None)
  in
  let wrapped =
    Fault.compromise
      ~adversarial:(Cdse_secure.Adversary.silent_takeover receiver)
      receiver
  in
  let channel =
    if seed mod 2 = 0 then Fault.lossy_channel ~cap:4 ~name:"ch" ~acts ()
    else Fault.delay_channel ~cap:4 ~name:"ch" ~acts ()
  in
  let inj = Fault.injector ~faults:[ Fault.compromise_action "r" ] () in
  Compose.pair inj (Fault.via ~channel ~acts sender wrapped)

let random_walk ?(span = 4) name =
  let step = act (name ^ ".step") in
  let state k = Value.tag "walk" (Value.int k) in
  let signature _ = sig_io ~h:[ step ] () in
  let transition q a =
    match q with
    | Value.Tag ("walk", Value.Int k) when Action.equal a step ->
        Some (Vdist.coin (state (min span (k + 1))) (state (max 0 (k - 1))))
    | _ -> None
  in
  Psioa.make ~name ~start:(state (span / 2)) ~signature ~transition
