(* Two-tier representation. Probability arithmetic in the measure engine
   overwhelmingly involves rationals whose numerator and denominator fit a
   native int; the [S] constructor keeps those out of the [Bignat] limb
   representation entirely: int gcd, overflow-checked int arithmetic, no
   allocation beyond the constructor word. Values that cannot fit fall back
   to the [B] bignum form.

   Canonical invariant: a rational is represented [S] whenever its reduced
   |numerator| and denominator both fit an OCaml int (numerator strictly
   above [min_int], so negation is safe); [B] otherwise. Every constructor
   re-establishes this, so equal rationals always share a constructor and
   structural per-constructor equality/hashing is sound. *)

type t =
  | S of int * int
      (* numerator (signed, > min_int), denominator > 0, gcd(|num|, den) = 1 *)
  | B of { sg : int; n : Bignat.t; d : Bignat.t }

module Obs = Cdse_obs.Obs

(* Counted each time a small/small operation overflows the int fast path and
   has to redo its work in Bignat limbs. Operations whose arguments are
   already [B] are not promotions — the value was big before the call. *)
let c_promotions = Obs.counter "rat.promotions"

let zero = S (0, 1)
let one = S (1, 1)
let minus_one = S (-1, 1)
let half = S (1, 2)

(* gcd on non-negative ints. *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* [Bignat.of_int] rejects negatives and [abs min_int] is negative: build
   |min_int| = max_int + 1 explicitly. *)
let bignat_of_abs n =
  if n = min_int then Bignat.add (Bignat.of_int max_int) Bignat.one
  else Bignat.of_int (abs n)

(* Overflow-checked int arithmetic: [None] signals "redo in Bignat". *)
let add_ovf a b =
  let s = a + b in
  if a >= 0 = (b >= 0) && s >= 0 <> (a >= 0) then None else Some s

let mul_ovf a b =
  if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else
    let p = a * b in
    if p / b = a then Some p else None

(* Normalizing big constructor; demotes to [S] when the reduced value fits. *)
let make ~sign ~num ~den =
  if Bignat.is_zero den then raise Division_by_zero;
  if sign < -1 || sign > 1 then invalid_arg "Rat.make: bad sign";
  if sign = 0 || Bignat.is_zero num then zero
  else
    let g = Bignat.gcd num den in
    let n, _ = Bignat.divmod num g in
    let d, _ = Bignat.divmod den g in
    match (Bignat.to_int_opt n, Bignat.to_int_opt d) with
    | Some ni, Some di -> S ((if sign < 0 then -ni else ni), di)
    | _ -> B { sg = sign; n; d }

(* Normalizing small constructor: [d > 0]; [n = min_int] is promoted so the
   stored numerator always negates safely. *)
let small n d =
  if n = 0 then zero
  else if n = min_int then
    make ~sign:(-1) ~num:(bignat_of_abs n) ~den:(Bignat.of_int d)
  else
    let g = igcd (abs n) d in
    S (n / g, d / g)

(* For results already in lowest terms (cross-reduced products). *)
let small_coprime n d =
  if n = 0 then zero
  else if n = min_int then
    make ~sign:(-1) ~num:(bignat_of_abs n) ~den:(Bignat.of_int d)
  else S (n, d)

let of_int n = if n = min_int then small n 1 else S (n, 1)

let of_ints num den =
  if den = 0 then raise Division_by_zero;
  if num = min_int || den = min_int then
    let sign = if num = 0 then 0 else if num > 0 = (den > 0) then 1 else -1 in
    make ~sign ~num:(bignat_of_abs num) ~den:(bignat_of_abs den)
  else if den < 0 then small (-num) (-den)
  else small num den

(* View as a (sign, |num|, den) Bignat triple — the slow-path currency. *)
let big_view = function
  | S (n, d) ->
      ((if n = 0 then 0 else if n > 0 then 1 else -1), bignat_of_abs n, Bignat.of_int d)
  | B { sg; n; d } -> (sg, n, d)

let num r = match r with S (n, _) -> bignat_of_abs n | B b -> b.n
let den r = match r with S (_, d) -> Bignat.of_int d | B b -> b.d
let sign r = match r with S (n, _) -> Int.compare n 0 | B b -> b.sg

let neg r =
  match r with S (n, d) -> S (-n, d) | B b -> B { b with sg = -b.sg }

let abs r = match r with S (n, d) -> S (Int.abs n, d) | B b -> B { b with sg = 1 }
let is_zero r = match r with S (0, _) -> true | _ -> false

(* |a| + |b| with signs on Bignat triples: cross-multiply unless the
   denominators already agree (the common case when summing probability
   masses). *)
let slow_add a b =
  let sa, na, da = big_view a and sb, nb, db = big_view b in
  if sa = 0 then b
  else if sb = 0 then a
  else
    let x, y, d =
      if Bignat.equal da db then (na, nb, da)
      else (Bignat.mul na db, Bignat.mul nb da, Bignat.mul da db)
    in
    if sa = sb then make ~sign:sa ~num:(Bignat.add x y) ~den:d
    else
      let c = Bignat.compare x y in
      if c = 0 then zero
      else if c > 0 then make ~sign:sa ~num:(Bignat.sub x y) ~den:d
      else make ~sign:sb ~num:(Bignat.sub y x) ~den:d

let add a b =
  match (a, b) with
  | S (0, _), x | x, S (0, _) -> x
  | S (na, da), S (nb, db) -> (
      let promote () =
        Obs.incr c_promotions;
        slow_add a b
      in
      if da = db then
        match add_ovf na nb with Some n -> small n da | None -> promote ()
      else
        match (mul_ovf na db, mul_ovf nb da, mul_ovf da db) with
        | Some x, Some y, Some d -> (
            match add_ovf x y with Some n -> small n d | None -> promote ())
        | _ -> promote ())
  | _ -> slow_add a b

let sub a b = add a (neg b)

let slow_mul a b =
  let sa, na, da = big_view a and sb, nb, db = big_view b in
  if sa = 0 || sb = 0 then zero
  else make ~sign:(sa * sb) ~num:(Bignat.mul na nb) ~den:(Bignat.mul da db)

let mul a b =
  match (a, b) with
  | S (0, _), _ | _, S (0, _) -> zero
  | S (1, 1), b -> b
  | a, S (1, 1) -> a
  | S (na, da), S (nb, db) -> (
      (* Cross-reduce before multiplying: keeps the products small and makes
         the result coprime by construction, so no gcd on the way out. *)
      let g1 = igcd (Int.abs na) db and g2 = igcd (Int.abs nb) da in
      let na = na / g1 and db = db / g1 in
      let nb = nb / g2 and da = da / g2 in
      match (mul_ovf na nb, mul_ovf da db) with
      | Some n, Some d -> small_coprime n d
      | _ ->
          Obs.incr c_promotions;
          slow_mul (S (na, da)) (S (nb, db)))
  | _ -> slow_mul a b

let inv a =
  match a with
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n > 0 then S (d, n) else S (-d, -n)
  | B b -> B { b with n = b.d; d = b.n }

let div a b = mul a (inv b)

(* Sign comparison, then cross-multiplied magnitudes — never materializes
   the difference. The small/small case is allocation-free unless the cross
   products overflow. *)
let slow_compare a b =
  let sa, na, da = big_view a and sb, nb, db = big_view b in
  if sa <> sb then Int.compare sa sb
  else if sa = 0 then 0
  else sa * Bignat.compare (Bignat.mul na db) (Bignat.mul nb da)

let compare a b =
  match (a, b) with
  | S (na, da), S (nb, db) -> (
      if da = db then Int.compare na nb
      else
        match (mul_ovf na db, mul_ovf nb da) with
        | Some x, Some y -> Int.compare x y
        | _ ->
            Obs.incr c_promotions;
            slow_compare a b)
  | _ -> slow_compare a b

let equal a b =
  match (a, b) with
  | S (na, da), S (nb, db) -> na = nb && da = db
  | B x, B y -> x.sg = y.sg && Bignat.equal x.n y.n && Bignat.equal x.d y.d
  | _ -> false (* canonical: a value fitting S is never stored as B *)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sum = List.fold_left add zero
let is_proper_prob r = sign r >= 0 && compare r one <= 0

let rec pow a k =
  if k = 0 then one
  else if k < 0 then inv (pow a (-k))
  else
    (* Square-and-multiply through [mul]: stays on the int fast path until a
       product genuinely overflows, then promotes. *)
    let rec go acc base k =
      if k = 0 then acc
      else if k land 1 = 1 then go (mul acc base) (mul base base) (k lsr 1)
      else go acc (mul base base) (k lsr 1)
    in
    go one a k

let to_float r =
  match r with
  | S (n, d) -> float_of_int n /. float_of_int d
  | B { sg; n; d } ->
      let big_to_float b =
        match Bignat.to_int_opt b with
        | Some i -> float_of_int i
        | None ->
            (* Scale down: take the top 52 bits and reapply the exponent. *)
            let nb = Bignat.num_bits b in
            let shift = nb - 52 in
            let top, _ = Bignat.divmod b (Bignat.pow Bignat.two shift) in
            let m =
              match Bignat.to_int_opt top with Some i -> float_of_int i | None -> assert false
            in
            ldexp m shift
      in
      float_of_int sg *. (big_to_float n /. big_to_float d)

let to_bits r =
  let open Cdse_util.Bits in
  let nbits = Bignat.to_bits (num r) and dbits = Bignat.to_bits (den r) in
  concat
    [ singleton (sign r >= 0);
      encode_nat (length nbits);
      nbits;
      encode_nat (length dbits);
      dbits ]

let of_bits bits =
  let open Cdse_util.Bits in
  let r = Reader.make bits in
  let sign_bit = Reader.read_bit r in
  let nlen = Reader.read_nat r in
  let n = Bignat.of_bits (Reader.read_bits nlen r) in
  let dlen = Reader.read_nat r in
  let d = Bignat.of_bits (Reader.read_bits dlen r) in
  if not (Reader.at_end r) then invalid_arg "Rat.of_bits: trailing bits";
  let sign = if Bignat.is_zero n then 0 else if sign_bit then 1 else -1 in
  make ~sign ~num:n ~den:d

let to_string r =
  match r with
  | S (n, 1) -> string_of_int n
  | S (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | B { sg; n; d } ->
      let base =
        if Bignat.equal d Bignat.one then Bignat.to_string n
        else Bignat.to_string n ^ "/" ^ Bignat.to_string d
      in
      if sg < 0 then "-" ^ base else base

let of_string s =
  let s, sign =
    if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1)
    else (s, 1)
  in
  match String.index_opt s '/' with
  | None ->
      let n = Bignat.of_string s in
      make ~sign:(if Bignat.is_zero n then 0 else sign) ~num:n ~den:Bignat.one
  | Some i ->
      let n = Bignat.of_string (String.sub s 0 i) in
      let d = Bignat.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make ~sign:(if Bignat.is_zero n then 0 else sign) ~num:n ~den:d

let pp fmt r = Format.pp_print_string fmt (to_string r)

let hash r =
  (* Per-constructor hashing is sound because representation is canonical. *)
  match r with
  | S (n, d) -> Hashtbl.hash (n, d)
  | B { sg; n; d } -> Hashtbl.hash (sg, Bignat.hash n, Bignat.hash d)
