(* Sorted-array representation: elements in strictly increasing [cmp] order,
   probabilities strictly positive, total mass cached at construction.
   Compared to the previous sorted association list this makes [make]
   an array sort plus one merging pass (no non-tail recursion, so 100k+
   support points are safe), [prob] a binary search, and lets [product] /
   [product_list] build their (already sorted, duplicate-free) result
   directly without re-normalizing. *)

type 'a t = { cmp : 'a -> 'a -> int; elts : 'a array; probs : Rat.t array; mass : Rat.t }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let empty ~compare = { cmp = compare; elts = [||]; probs = [||]; mass = Rat.zero }

(* Internal: trusted components (sorted, positive, mass ≤ 1). *)
let unsafe ~compare ~elts ~probs ~mass = { cmp = compare; elts; probs; mass }

(* Merge-normalize an association list under [cmp]: sort, merge duplicates,
   drop zeros, validate non-negativity and mass ≤ 1. *)
let make ~compare pairs =
  List.iter
    (fun (_, p) ->
      if Rat.sign p < 0 then invalid "Dist: negative probability %s" (Rat.to_string p))
    pairs;
  let check_mass m =
    if Rat.compare m Rat.one > 0 then invalid "Dist: mass %s exceeds 1" (Rat.to_string m)
  in
  match pairs with
  | [] -> empty ~compare
  | [ (x, p) ] ->
      if Rat.is_zero p then empty ~compare
      else begin
        check_mass p;
        unsafe ~compare ~elts:[| x |] ~probs:[| p |] ~mass:p
      end
  | [ (x, p); (y, q) ] when (not (Rat.is_zero p)) && not (Rat.is_zero q) ->
      let c = compare x y in
      let m = Rat.add p q in
      check_mass m;
      if c = 0 then unsafe ~compare ~elts:[| x |] ~probs:[| m |] ~mass:m
      else if c < 0 then unsafe ~compare ~elts:[| x; y |] ~probs:[| p; q |] ~mass:m
      else unsafe ~compare ~elts:[| y; x |] ~probs:[| q; p |] ~mass:m
  | _ ->
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  begin
    Array.stable_sort (fun (a, _) (b, _) -> compare a b) arr;
    let elts = Array.make n (fst arr.(0)) in
    let probs = Array.make n Rat.zero in
    let k = ref 0 in
    let mass = ref Rat.zero in
    let flush x p =
      if not (Rat.is_zero p) then begin
        elts.(!k) <- x;
        probs.(!k) <- p;
        mass := Rat.add !mass p;
        incr k
      end
    in
    let cur = ref arr.(0) in
    for i = 1 to n - 1 do
      let x, p = arr.(i) in
      let cx, cp = !cur in
      if compare cx x = 0 then cur := (cx, Rat.add cp p)
      else begin
        flush cx cp;
        cur := (x, p)
      end
    done;
    let cx, cp = !cur in
    flush cx cp;
    if Rat.compare !mass Rat.one > 0 then
      invalid "Dist: mass %s exceeds 1" (Rat.to_string !mass);
    { cmp = compare;
      elts = Array.sub elts 0 !k;
      probs = Array.sub probs 0 !k;
      mass = !mass }
  end

let dirac ~compare x = { cmp = compare; elts = [| x |]; probs = [| Rat.one |]; mass = Rat.one }

let uniform ~compare l =
  match l with
  | [] -> invalid "Dist.uniform: empty support"
  | _ ->
      let p = Rat.of_ints 1 (List.length l) in
      make ~compare (List.map (fun x -> (x, p)) l)

let bernoulli ~compare p =
  if not (Rat.is_proper_prob p) then invalid "Dist.bernoulli: %s not in [0,1]" (Rat.to_string p);
  make ~compare [ (true, p); (false, Rat.sub Rat.one p) ]

let items d =
  List.init (Array.length d.elts) (fun i -> (d.elts.(i), d.probs.(i)))

let support d = Array.to_list d.elts
let size d = Array.length d.elts
let compare_elt d = d.cmp

let iter f d = Array.iteri (fun i x -> f x d.probs.(i)) d.elts

let fold f acc d =
  let acc = ref acc in
  for i = 0 to Array.length d.elts - 1 do
    acc := f !acc d.elts.(i) d.probs.(i)
  done;
  !acc

let prob d x =
  let lo = ref 0 and hi = ref (Array.length d.elts - 1) in
  let found = ref Rat.zero in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = d.cmp x d.elts.(mid) in
    if c = 0 then begin
      found := d.probs.(mid);
      lo := !hi + 1
    end
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let mass d = d.mass
let deficit d = Rat.sub Rat.one d.mass
let is_proper d = Rat.equal d.mass Rat.one

let scale factor d =
  if Rat.sign factor < 0 || Rat.compare factor Rat.one > 0 then
    invalid "Dist.scale: factor %s not in [0,1]" (Rat.to_string factor);
  if Rat.is_zero factor then empty ~compare:d.cmp
  else
    { d with
      probs = Array.map (fun p -> Rat.mul factor p) d.probs;
      mass = Rat.mul factor d.mass }

let map ~compare f d =
  make ~compare (List.init (Array.length d.elts) (fun i -> (f d.elts.(i), d.probs.(i))))

let bind ~compare d f =
  make ~compare
    (fold
       (fun acc x p -> fold (fun acc y q -> (y, Rat.mul p q) :: acc) acc (f x))
       [] d)

(* The lexicographic product of two sorted duplicate-free supports is itself
   sorted and duplicate-free: build it in one pass, no re-normalization. *)
let product a b =
  let compare = Cdse_util.Order.pair a.cmp b.cmp in
  let na = Array.length a.elts and nb = Array.length b.elts in
  if na = 0 || nb = 0 then empty ~compare
  else begin
    let elts = Array.make (na * nb) (a.elts.(0), b.elts.(0)) in
    let probs = Array.make (na * nb) Rat.zero in
    for i = 0 to na - 1 do
      let x = a.elts.(i) and p = a.probs.(i) in
      let row = i * nb in
      for j = 0 to nb - 1 do
        elts.(row + j) <- (x, b.elts.(j));
        probs.(row + j) <- Rat.mul p b.probs.(j)
      done
    done;
    unsafe ~compare ~elts ~probs ~mass:(Rat.mul a.mass b.mass)
  end

let product_list ~compare ds =
  let lcompare = Cdse_util.Order.list compare in
  List.fold_right
    (fun d acc ->
      let nd = Array.length d.elts and nacc = Array.length acc.elts in
      if nd = 0 || nacc = 0 then empty ~compare:lcompare
      else begin
        let elts = Array.make (nd * nacc) [] in
        let probs = Array.make (nd * nacc) Rat.zero in
        for i = 0 to nd - 1 do
          let x = d.elts.(i) and p = d.probs.(i) in
          let row = i * nacc in
          for j = 0 to nacc - 1 do
            elts.(row + j) <- x :: acc.elts.(j);
            probs.(row + j) <- Rat.mul p acc.probs.(j)
          done
        done;
        unsafe ~compare:lcompare ~elts ~probs ~mass:(Rat.mul d.mass acc.mass)
      end)
    ds
    (dirac ~compare:lcompare [])

let filter pred d =
  let keep = ref [] and mass = ref Rat.zero and k = ref 0 in
  for i = Array.length d.elts - 1 downto 0 do
    if pred d.elts.(i) then begin
      keep := i :: !keep;
      mass := Rat.add !mass d.probs.(i);
      incr k
    end
  done;
  match !keep with
  | [] -> empty ~compare:d.cmp
  | first :: _ ->
      let elts = Array.make !k d.elts.(first) in
      let probs = Array.make !k Rat.zero in
      List.iteri
        (fun j i ->
          elts.(j) <- d.elts.(i);
          probs.(j) <- d.probs.(i))
        !keep;
      unsafe ~compare:d.cmp ~elts ~probs ~mass:!mass

let normalize d =
  if Array.length d.elts = 0 || Rat.equal d.mass Rat.one then d
  else
    let inv = Rat.inv d.mass in
    { d with probs = Array.map (fun p -> Rat.mul inv p) d.probs; mass = Rat.one }

let expect f d = fold (fun acc x p -> Rat.add acc (Rat.mul (f x) p)) Rat.zero d

let equal a b =
  Array.length a.elts = Array.length b.elts
  &&
  let rec go i =
    i < 0
    || (a.cmp a.elts.(i) b.elts.(i) = 0 && Rat.equal a.probs.(i) b.probs.(i) && go (i - 1))
  in
  go (Array.length a.elts - 1)

let corresponds ~f a b =
  (* f restricted to supp(a) must be a probability-preserving bijection onto
     supp(b) (Definition 2.15). Pushing a through f and comparing measures
     checks surjectivity and preservation; injectivity on the support holds
     iff the image support has the same cardinality. *)
  let image = map ~compare:b.cmp f a in
  size image = size a && equal image b

(* Exact inverse-CDF draw by lazy binary expansion. Conceptually a uniform
   U ∈ [0,1) selects the band of the exact cumulative masses it falls in:
   [cum i, cum (i+1)) ↦ elts.(i), and the residual band [mass, 1) ↦ None
   (the deficit). U is revealed one bit at a time — after k bits it is
   known to lie in a dyadic interval [a, a + 2^-k) — and the draw resolves
   as soon as that interval fits inside a single band, so P(elts.(i)) is
   probs.(i) {e exactly} (no grid, no floats) and the expected number of
   bits consumed is finite (≤ 2 beyond the band boundaries' resolution). *)
let sample_bits bit d =
  let n = Array.length d.elts in
  if n = 0 then None
  else begin
    let cum = Array.make (n + 1) Rat.zero in
    for i = 0 to n - 1 do
      cum.(i + 1) <- Rat.add cum.(i) d.probs.(i)
    done;
    (* Band i < n is [cum i, cum (i+1)); band n is the deficit [cum n, 1). *)
    let upper i = if i < n then cum.(i + 1) else Rat.one in
    let rec refine a w i =
      (* Invariant: U ∈ [a, a + w), and a >= the lower bound of band i. *)
      let i = ref i in
      while !i < n && Rat.compare (upper !i) a <= 0 do incr i done;
      let i = !i in
      if Rat.compare (Rat.add a w) (upper i) <= 0 then
        if i < n then Some d.elts.(i) else None
      else
        let w = Rat.mul w Rat.half in
        refine (if bit () then Rat.add a w else a) w i
    in
    refine Rat.zero Rat.one 0
  end

let sample rng d = sample_bits (fun () -> Rng.bool rng) d

let pp pp_elt fmt d =
  Format.fprintf fmt "@[<hov 1>{";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%a ↦ %a" pp_elt x Rat.pp d.probs.(i))
    d.elts;
  Format.fprintf fmt "}@]"
