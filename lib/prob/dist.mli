(** Exact finite discrete (sub-)probability distributions.

    This is the executable counterpart of [Disc(S)] and [SubDisc(S)] from
    Section 2.1 of the paper. The paper works with countable supports; every
    object the framework actually manipulates under a bounded scheduler
    (Definition 4.6) has finite support, so a sorted array of
    [(element, probability)] pairs with exact rational probabilities is a
    faithful representation (see DESIGN.md, substitution table).

    A value of type ['a t] carries its own element comparator. Probabilities
    are strictly positive in [items]; total mass is [≤ 1], with mass [< 1]
    representing the halting deficit of a sub-probability measure
    (Definition 3.1). *)

type 'a t

exception Invalid of string

val make : compare:('a -> 'a -> int) -> ('a * Rat.t) list -> 'a t
(** Normalizes: merges duplicate elements, drops zero entries. Raises
    {!Invalid} on negative probabilities or total mass [> 1]. *)

val empty : compare:('a -> 'a -> int) -> 'a t
(** The zero sub-distribution (total halting). *)

val dirac : compare:('a -> 'a -> int) -> 'a -> 'a t
(** [δ_x] (Section 2.1). *)

val uniform : compare:('a -> 'a -> int) -> 'a list -> 'a t
(** Uniform over a non-empty list (duplicates merged). *)

val bernoulli : compare:(bool -> bool -> int) -> Rat.t -> bool t
(** [bernoulli p] is [true] with probability [p]. *)

val scale : Rat.t -> 'a t -> 'a t
(** Multiply all masses by a factor in [0,1]. *)

val items : 'a t -> ('a * Rat.t) list
(** Sorted, strictly positive entries. *)

val support : 'a t -> 'a list
(** [supp(η)] — elements of non-zero probability. *)

val iter : ('a -> Rat.t -> unit) -> 'a t -> unit
(** Iterate over the entries in increasing element order without
    materializing the {!items} list — for the hot loops of the measure
    engine. *)

val fold : ('acc -> 'a -> Rat.t -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over the entries in increasing element order, allocation-free. *)

val prob : 'a t -> 'a -> Rat.t
(** Probability of one element — a binary search on the sorted support. *)

val mass : 'a t -> Rat.t
(** Total probability mass; cached at construction, O(1). *)

val deficit : 'a t -> Rat.t
(** [1 - mass]: the halting probability of a sub-distribution. *)

val is_proper : 'a t -> bool
(** Mass exactly 1 — a probability measure rather than a sub-measure. *)

val size : 'a t -> int
val compare_elt : 'a t -> 'a -> 'a -> int
(** The comparator the distribution was built with. *)

val map : compare:('b -> 'b -> int) -> ('a -> 'b) -> 'a t -> 'b t
(** Pushforward (image measure, Definition 3.5): mass-preserving. *)

val bind : compare:('b -> 'b -> int) -> 'a t -> ('a -> 'b t) -> 'b t
(** Monadic composition: [bind d f] weights each [f x] by [prob d x]. *)

val product : 'a t -> 'b t -> ('a * 'b) t
(** Product measure [η₁ ⊗ η₂] (Section 2.1). *)

val product_list : compare:('a -> 'a -> int) -> 'a t list -> 'a list t
(** n-ary product, as used for joint transitions in Definition 2.5. *)

val filter : ('a -> bool) -> 'a t -> 'a t
(** Restriction (sub-distribution; mass may drop). *)

val normalize : 'a t -> 'a t
(** Conditioning: scale a non-empty sub-distribution up to mass exactly 1
    (the empty distribution stays empty). Used by scheduler combinators
    that restrict a choice to a sub-support — e.g. the fault-budget
    scheduler, which conditions on "no further fault" — without turning
    the removed mass into spurious halting. *)

val expect : ('a -> Rat.t) -> 'a t -> Rat.t
(** Expected value of a rational-valued function. *)

val equal : 'a t -> 'a t -> bool
(** Extensional equality of measures (same support, same masses). *)

val corresponds : f:('a -> 'b) -> 'a t -> 'b t -> bool
(** [η ↔_f η'] of Definition 2.15: [f] restricted to [supp η] is a bijection
    onto [supp η'] preserving probabilities. *)

val sample : Rng.t -> 'a t -> 'a option
(** Draw from the (sub-)distribution; [None] with the deficit probability.
    The draw is {e exact}: each element is returned with exactly its
    rational probability (and [None] with exactly the deficit), by lazy
    binary expansion of a uniform real against the exact cumulative
    masses — no floating point and no fixed sampling grid, so events of
    arbitrarily small probability are correctly weighted. Consumes a
    finite expected number of random bits. Used only by simulation
    drivers and benchmarks, never by the exact measure computations. *)

val sample_bits : (unit -> bool) -> 'a t -> 'a option
(** [sample] against an explicit fair-bit source: [bit ()] must return
    independent fair coin flips; successive calls reveal the binary
    expansion of the uniform draw most-significant bit first. Exposed so
    tests can drive the draw deterministically. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
