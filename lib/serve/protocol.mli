(** Wire protocol of the [cdse_serve] daemon.

    Requests and replies are newline-delimited JSON objects over a Unix
    socket. Every request carries an integer ["id"] (echoed in the reply,
    so clients may pipeline) and an ["op"]. The measure-bearing ops
    ([measure], [reach]) name their model and scheduler {e by
    specification} — a seed/parameter record, not a serialized automaton —
    which is what makes server-side model hash-consing and result caching
    sound: two requests with the same spec denote the same automaton.

    {2 Grammar}

    {v
    request  := { "id": int, "op": op, ... }
    op       := "ping" | "measure" | "reach" | "emulate"
              | "stats" | "shutdown"
    measure  := { ..., "model": model, "sched": sched, "depth": int,
                  "compress"?: "off"|"hcons"|"quotient",
                  "engine"?: "auto"|"layered"|"subtree",
                  "domains"?: int, "memo"?: bool,
                  "max_execs"?: int, "max_width"?: int }
    reach    := measure fields + { "state": bits }
    emulate  := { ..., "protocol": "channel"|"coin-flip"|
                       "secret-share"|"broadcast", "broken"?: bool }
    model    := { "kind": "coin", "p"?: rat }
              | { "kind": "random_walk", "span"?: int }
              | { "kind": "counter", "bound"?: int }
              | { "kind": "random_auto", "seed": int, "states"?: int,
                  "actions"?: int, "branching"?: int }
              | { "kind": "random_pca", "seed": int, "members"?: int,
                  "faults"?: bool }
              | { "kind": "faulty_channel", "seed": int }
              | { "kind": "committee", "validators"?: int, "blocks"?: int }
    sched    := { "kind": "uniform"|"first_enabled"|"round_robin",
                  "fault_budget"?: int, "bound"?: int }
    rat      := string accepted by [Rat.of_string] ("1/2")
    bits     := string accepted by [Bits.of_string] ("0101")
    reply    := { "id": int|null, "ok": true,  "result": ... }
              | { "id": int|null, "ok": false,
                  "error": { "kind": "protocol"|"overloaded"|"engine",
                             "field": string, "msg": string } }
    v}

    Parsing applies the library defaults ([coin] p = 1/2, [random_auto]
    6 states / 4 actions / branching 2, …), so a spec written with explicit
    defaults and one relying on them produce the {e same} canonical key —
    and hence hit the same cache entry. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched

(** {1 Errors} *)

exception
  Protocol_error of { id : int option; field : string; msg : string }
(** A request the daemon could not interpret: unparseable JSON, missing or
    ill-typed field, unknown enum value. [field] names the offending field
    (["request"] for body-level failures); [id] is the request id when it
    was recoverable from the body. The daemon replies with an
    [ok = false] / [kind = "protocol"] error object and {e keeps the
    connection open}. A printer is registered. *)

exception Overloaded of { id : int option; queue_depth : int; cap : int }
(** Raised (and reported as [kind = "overloaded"]) when a measure-bearing
    request arrives while the job queue already holds [cap] entries. The
    request is rejected without being enqueued; already-queued work is
    unaffected. A printer is registered. *)

(** {1 Specifications} *)

type model =
  | Coin of { p : Rat.t }
  | Random_walk of { span : int }
  | Counter of { bound : int }
  | Random_auto of { seed : int; states : int; actions : int; branching : int }
  | Random_pca of { seed : int; members : int; faults : bool }
  | Faulty_channel of { seed : int }
  | Committee of { validators : int; blocks : int }

type sched_kind = Uniform | First_enabled | Round_robin

type sched = {
  s_kind : sched_kind;
  s_fault_budget : int option;  (** wrap with [Fault.budget_sched k] *)
  s_bound : int option;  (** wrap with [Scheduler.bounded b]; [None] = unbounded *)
}

type query = {
  q_model : model;
  q_sched : sched;
  q_depth : int;
  q_compress : Measure.compress;
  q_engine : Measure.engine;
  q_domains : int option;  (** [None] = server default *)
  q_memo : bool;
  q_max_execs : int option;
  q_max_width : int option;
}

type protocol_name = [ `Channel | `Coin_flip | `Secret_share | `Broadcast ]

type op =
  | Ping
  | Measure of query
  | Reach of query * Cdse_util.Bits.t  (** probability of reaching this state *)
  | Emulate of { protocol : protocol_name; broken : bool }
  | Stats
  | Shutdown

type request = { r_id : int; r_op : op }

val parse_request : string -> request
(** Parse one wire line. Raises {!Protocol_error} on any failure. *)

(** {1 Canonical cache keys}

    The cache key deliberately {e excludes} engine, domain count, chunking
    and memoization: the measure engines guarantee bit-identical results
    across all of them (the repo's determinism contract), so they are
    performance knobs, not semantics. It {e includes} compression mode
    (a [`Quotient] distribution is over representatives) and the
    exec/width budgets (truncation changes the answer). *)

val model_key : model -> string
val sched_key : sched -> string

val query_line : query -> string
(** Everything except the depth — requests sharing a line are the same
    converging computation at different depths, which is what the
    incremental-deepening frontier reuse keys on. Budgeted queries get a
    distinct line (and never share frontiers). *)

val query_key : query -> string
(** [query_line] + depth: the exact result-cache key. *)

val is_budgeted : query -> bool

(** {1 Spec elaboration} *)

val build_model : model -> Psioa.t
(** Deterministic: equal specs yield behaviourally identical automata
    (seeded generators), so elaboration may be cached by {!model_key}. *)

val build_sched : Psioa.t -> sched -> Scheduler.t
