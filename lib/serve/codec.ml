open Cdse_prob
open Cdse_psioa
module Bits = Cdse_util.Bits

let value_str v = Bits.to_string (Value.to_bits v)
let action_str a = Bits.to_string (Action.to_bits a)

let exec_to_json e =
  Json.Obj
    [
      ("start", Json.Str (value_str (Exec.fstate e)));
      ( "steps",
        Json.List
          (List.map
             (fun (a, q) ->
               Json.List [ Json.Str (action_str a); Json.Str (value_str q) ])
             (Exec.steps e)) );
    ]

let malformed what = invalid_arg ("Serve.Codec: malformed " ^ what)

let str_of = function Json.Str s -> s | _ -> malformed "string"

let value_of j = Value.of_bits (Bits.of_string (str_of j))
let action_of j = Action.of_bits (Bits.of_string (str_of j))

let exec_of_json j =
  match (Json.member "start" j, Json.member "steps" j) with
  | Some start, Some (Json.List steps) ->
      Exec.of_steps (value_of start)
        (List.map
           (function
             | Json.List [ a; q ] -> (action_of a, value_of q)
             | _ -> malformed "exec step")
           steps)
  | _ -> malformed "exec"

let dist_to_json d =
  Json.Obj
    [
      ( "items",
        Json.List
          (List.map
             (fun (e, p) ->
               Json.List [ exec_to_json e; Json.Str (Rat.to_string p) ])
             (Dist.items d)) );
      ("mass", Json.Str (Rat.to_string (Dist.mass d)));
      ("deficit", Json.Str (Rat.to_string (Dist.deficit d)));
      ("size", Json.Num (float_of_int (Dist.size d)));
    ]

let dist_of_json j =
  match Json.member "items" j with
  | Some (Json.List items) ->
      Dist.make ~compare:Exec.compare
        (List.map
           (function
             | Json.List [ e; Json.Str p ] -> (exec_of_json e, Rat.of_string p)
             | _ -> malformed "dist item")
           items)
  | _ -> malformed "dist"
