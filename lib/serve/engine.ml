open Cdse_prob
open Cdse_psioa
open Cdse_sched
open Cdse_secure
open Cdse_crypto
module Obs = Cdse_obs.Obs

let c_model_hit = Obs.counter "serve.model.hit"
let c_model_miss = Obs.counter "serve.model.miss"
let c_resume = Obs.counter "serve.cache.resume"

type t = {
  cache : Cache.t;
  models : (string, Psioa.t) Hashtbl.t;
  models_mutex : Mutex.t;
  par_mutex : Mutex.t;
  default_domains : int;
}

let create ?(cache_cap = 64) ?(domains = 1) () =
  {
    cache = Cache.create ~cap:cache_cap;
    models = Hashtbl.create 16;
    models_mutex = Mutex.create ();
    par_mutex = Mutex.create ();
    default_domains = domains;
  }

let model t spec =
  let key = Protocol.model_key spec in
  Mutex.lock t.models_mutex;
  let auto =
    match Hashtbl.find_opt t.models key with
    | Some auto ->
        Obs.incr c_model_hit;
        auto
    | None ->
        Obs.incr c_model_miss;
        (* Built under the lock: elaboration is cheap (small generators)
           and this guarantees one automaton per spec, which downstream
           memo tables key on physically. *)
        let auto = Protocol.build_model spec in
        Hashtbl.add t.models key auto;
        auto
  in
  Mutex.unlock t.models_mutex;
  auto

(* Multicore queries serialize here: the measure engines spin up their own
   domain pool per call, so two concurrent domains=4 requests would want 8
   cores. Batching them one-after-another onto the same budget keeps the
   daemon's footprint at [max domains] regardless of client concurrency.
   Single-domain queries bypass the lock and run fully concurrently. *)
let with_pool t ~domains f =
  if domains <= 1 then f ()
  else begin
    Mutex.lock t.par_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.par_mutex) f
  end

type measure_result = {
  m_dist : Exec.t Dist.t;
  m_deficit : Rat.t option;
  m_cached : bool;
  m_resumed_from : int option;
  m_render : string option ref;
}

let measure t (q : Protocol.query) =
  let key = Protocol.query_key q in
  match Cache.find t.cache ~key with
  | Some e ->
      {
        m_dist = e.Cache.e_dist;
        m_deficit = e.Cache.e_deficit;
        m_cached = true;
        m_resumed_from = None;
        m_render = e.Cache.e_render;
      }
  | None ->
      let auto = model t q.q_model in
      let sched = Protocol.build_sched auto q.q_sched in
      let domains = Option.value ~default:t.default_domains q.q_domains in
      let line = Protocol.query_line q in
      if Protocol.is_budgeted q then begin
        (* Budgeted: the truncation frontier depends on the budget, so
           neither storing nor resuming frontiers is sound. Exact-key
           caching still applies (budgets are part of the key). *)
        let res =
          with_pool t ~domains (fun () ->
              Measure.exec_dist_budgeted ~engine:q.q_engine ~memo:q.q_memo
                ?max_execs:q.q_max_execs ?max_width:q.q_max_width ~domains
                ~compress:q.q_compress auto sched ~depth:q.q_depth)
        in
        let dist, deficit =
          match res with
          | `Exact d -> (d, None)
          | `Truncated (d, lost) -> (d, Some lost)
        in
        let render = ref None in
        Cache.add t.cache ~key ~line ~depth:q.q_depth ~dist ?deficit ~render ();
        {
          m_dist = dist;
          m_deficit = deficit;
          m_cached = false;
          m_resumed_from = None;
          m_render = render;
        }
      end
      else begin
        let from = Cache.best_frontier t.cache ~line ~depth:q.q_depth in
        (match from with Some _ -> Obs.incr c_resume | None -> ());
        let dist, frontier =
          with_pool t ~domains (fun () ->
              Measure.exec_dist_frontier ~engine:q.q_engine ~memo:q.q_memo
                ~domains ~compress:q.q_compress ?from auto sched
                ~depth:q.q_depth)
        in
        let render = ref None in
        Cache.add t.cache ~key ~line ~depth:q.q_depth ~dist ~frontier ~render ();
        {
          m_dist = dist;
          m_deficit = None;
          m_cached = false;
          m_resumed_from =
            Option.map (fun f -> f.Measure.f_depth) from;
          m_render = render;
        }
      end

let reach t (q : Protocol.query) ~state =
  let target = Value.of_bits state in
  let pred v = Value.equal v target in
  match q.q_compress with
  | `Quotient ->
      (* The quotient needs [pred] as a track refinement while it merges
         classes, so reach under quotient goes straight to the engine
         (uncached — the refined computation is not the cached one). *)
      let auto = model t q.q_model in
      let sched = Protocol.build_sched auto q.q_sched in
      let domains = Option.value ~default:t.default_domains q.q_domains in
      let p =
        with_pool t ~domains (fun () ->
            Measure.reach_prob ~memo:q.q_memo ?max_execs:q.q_max_execs
              ?max_width:q.q_max_width ~domains ~compress:`Quotient auto
              sched ~depth:q.q_depth ~pred)
      in
      (p, false)
  | `Off | `Hcons ->
      let r = measure t q in
      let p =
        Dist.fold
          (fun acc e pr ->
            if List.exists pred (Exec.states e) then Rat.add acc pr else acc)
          Rat.zero r.m_dist
      in
      (p, r.m_cached)

let emulate ~protocol ~broken =
  match protocol with
  | `Channel ->
      let real =
        if broken then Secure_channel.real_leaky "sc"
        else Secure_channel.real "sc"
      in
      Emulation.check
        ~schema:(Schema.deterministic ~bound:12)
        ~insight_of:Insight.accept
        ~envs:[ Secure_channel.env_guess ~msg:1 "sc" ]
        ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14
        ~adversaries:[ Secure_channel.adversary "sc" ]
        ~sim_for:(fun _ -> Secure_channel.simulator "sc")
        ~real
        ~ideal:(Secure_channel.ideal "sc")
  | `Coin_flip ->
      let real =
        if broken then Coin_flip.real_cheating "cf" else Coin_flip.real "cf"
      in
      Emulation.check
        ~schema:(Schema.deterministic ~bound:14)
        ~insight_of:Insight.accept
        ~envs:[ Coin_flip.env_result "cf" ]
        ~eps:Rat.zero ~q1:14 ~q2:14 ~depth:16
        ~adversaries:[ Coin_flip.adversary "cf" ]
        ~sim_for:(fun _ -> Coin_flip.simulator "cf")
        ~real
        ~ideal:(Coin_flip.ideal "cf")
  | `Secret_share ->
      let real =
        if broken then Secret_share.transparent "ss" else Secret_share.real "ss"
      in
      Emulation.check
        ~schema:(Schema.deterministic ~bound:12)
        ~insight_of:Insight.accept
        ~envs:[ Secret_share.env_guess ~secret:1 "ss" ]
        ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14
        ~adversaries:[ Secret_share.adversary "ss" ]
        ~sim_for:(fun _ -> Secret_share.simulator "ss")
        ~real
        ~ideal:(Secret_share.ideal "ss")
  | `Broadcast ->
      (* No broken variant exists for broadcast; [broken] is ignored, as
         in the CLI. *)
      let k = 2 in
      Emulation.check
        ~schema:(Schema.deterministic ~bound:12)
        ~insight_of:Insight.accept
        ~envs:[ Broadcast.env_all_delivered ~k ~msg:1 "bc" ]
        ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14
        ~adversaries:[ Broadcast.adversary ~k "bc" ]
        ~sim_for:(fun _ -> Broadcast.simulator ~k "bc")
        ~real:(Broadcast.real ~k "bc")
        ~ideal:(Broadcast.ideal ~k "bc")
