(** Minimal JSON values for the serve wire protocol.

    Self-contained (the repo deliberately carries no JSON dependency — same
    policy as the bench harness's validator). Numbers are floats on the
    wire; every exact quantity of the protocol (rationals, state and action
    encodings) travels as a string, so nothing measure-relevant ever
    round-trips through floating point. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** Pre-rendered JSON, spliced verbatim by {!to_string}. Never
          produced by {!parse}; the payload must itself be valid compact
          JSON. Lets the server reuse a reply body rendered once (the
          cache's render memo) without re-walking the value. *)

exception Parse_error of string

val parse : string -> t
(** Parse one complete JSON document. Raises {!Parse_error} with an offset
    diagnostic on malformed input (including trailing content). *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — the wire protocol is
    newline-delimited). Strings are escaped per RFC 8259; integral floats
    render without a fractional part. *)

(** {2 Accessors} — conveniences for picking apart parsed requests. *)

val member : string -> t -> t option
(** Field of an object; [None] for a missing field or a non-object. *)

val to_int : t -> int option
(** [Num f] with integral [f]; [None] otherwise. *)
