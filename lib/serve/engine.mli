(** Socket-free compute core of the daemon: model registry + result cache
    + measure dispatch. Split from {!Server} so the cache semantics can be
    exercised directly (the qcheck property suite drives this module with
    a tiny capacity to force LRU churn, without any sockets).

    Thread-safe: the registry and cache take their own locks; queries that
    request more than one domain additionally serialize on an internal
    mutex so concurrent multicore requests batch onto one domain-pool
    budget instead of oversubscribing the machine. *)

open Cdse_prob
open Cdse_psioa
open Cdse_secure

type t

val create : ?cache_cap:int -> ?domains:int -> unit -> t
(** [cache_cap] bounds the result cache (default 64 entries); [domains] is
    the default per-query domain count (default 1), overridable per
    request. *)

val model : t -> Protocol.model -> Psioa.t
(** Hash-consed spec elaboration: the first request for a spec builds the
    automaton ([serve.model.miss]), later ones reuse it
    ([serve.model.hit]). *)

type measure_result = {
  m_dist : Exec.t Dist.t;
  m_deficit : Rat.t option;  (** [Some lost] iff truncated by a budget *)
  m_cached : bool;  (** exact cache hit — no engine work at all *)
  m_resumed_from : int option;
      (** depth of the frontier this computation resumed from, when
          incremental deepening applied *)
  m_render : string option ref;
      (** the cache entry's render memo (see {!Cache.entry}): the server
          fills it with the rendered dist JSON on first reply so warm
          hits skip the codec *)
}

val measure : t -> Protocol.query -> measure_result
(** Cache-first measure. Unbudgeted queries store their frontier and
    resume from the deepest cached frontier on the same
    {!Protocol.query_line}; budgeted queries bypass frontier logic (their
    truncation makes resumption unsound) but still cache exact-key
    results. Bit-identical to a cold [Measure.exec_dist] at the same
    query — that is the determinism contract the protocol tests enforce. *)

val reach : t -> Protocol.query -> state:Cdse_util.Bits.t -> Rat.t * bool
(** Probability that a completed execution visits the given state (exact
    encoded-value match). Under [`Quotient] compression this delegates to
    [Measure.reach_prob] (the predicate must refine the quotient), else it
    folds over the — possibly cached — measure result. The boolean
    reports whether the answer came from cache. *)

val emulate :
  protocol:Protocol.protocol_name -> broken:bool -> Impl.verdict
(** The CLI's four toy-protocol emulation checks, server-side. *)
