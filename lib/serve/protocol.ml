open Cdse_prob
open Cdse_sched

exception
  Protocol_error of { id : int option; field : string; msg : string }

exception Overloaded of { id : int option; queue_depth : int; cap : int }

let () =
  Printexc.register_printer (function
    | Protocol_error { id; field; msg } ->
        Some
          (Printf.sprintf
             "Serve.Protocol_error: request %s, field %S: %s. The daemon \
              replies with an {\"ok\": false, \"error\": {\"kind\": \
              \"protocol\", ...}} object and keeps the connection open; fix \
              the field and resend."
             (match id with
             | Some i -> Printf.sprintf "id %d" i
             | None -> "(id unknown)")
             field msg)
    | Overloaded { id; queue_depth; cap } ->
        Some
          (Printf.sprintf
             "Serve.Overloaded: request %s rejected: %d queued jobs already \
              at the admission cap of %d. The request was not enqueued; \
              retry once in-flight queries drain, or restart the daemon \
              with a larger --max-queue."
             (match id with
             | Some i -> Printf.sprintf "id %d" i
             | None -> "(id unknown)")
             queue_depth cap)
    | _ -> None)

type model =
  | Coin of { p : Rat.t }
  | Random_walk of { span : int }
  | Counter of { bound : int }
  | Random_auto of { seed : int; states : int; actions : int; branching : int }
  | Random_pca of { seed : int; members : int; faults : bool }
  | Faulty_channel of { seed : int }
  | Committee of { validators : int; blocks : int }

type sched_kind = Uniform | First_enabled | Round_robin

type sched = {
  s_kind : sched_kind;
  s_fault_budget : int option;
  s_bound : int option;
}

type query = {
  q_model : model;
  q_sched : sched;
  q_depth : int;
  q_compress : Measure.compress;
  q_engine : Measure.engine;
  q_domains : int option;
  q_memo : bool;
  q_max_execs : int option;
  q_max_width : int option;
}

type protocol_name = [ `Channel | `Coin_flip | `Secret_share | `Broadcast ]

type op =
  | Ping
  | Measure of query
  | Reach of query * Cdse_util.Bits.t
  | Emulate of { protocol : protocol_name; broken : bool }
  | Stats
  | Shutdown

type request = { r_id : int; r_op : op }

(* Field extraction. Every failure funnels through [bad] so the reply can
   name the offending field; [id] is threaded through once the request id
   has been recovered, so even mid-body failures echo it. *)

let bad ?id field msg = raise (Protocol_error { id; field; msg })

let get_int ?id ~field ?default obj =
  match Json.member field obj with
  | None -> (
      match default with
      | Some d -> d
      | None -> bad ?id field "required integer field is missing")
  | Some v -> (
      match Json.to_int v with
      | Some i -> i
      | None -> bad ?id field "expected an integer")

let get_bool ?id ~field ~default obj =
  match Json.member field obj with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad ?id field "expected a boolean"

let get_str ?id ~field obj =
  match Json.member field obj with
  | None -> bad ?id field "required string field is missing"
  | Some (Json.Str s) -> s
  | Some _ -> bad ?id field "expected a string"

let get_opt_int ?id ~field obj =
  match Json.member field obj with
  | None -> None
  | Some v -> (
      match Json.to_int v with
      | Some i -> Some i
      | None -> bad ?id field "expected an integer")

let parse_model ~id obj =
  match Json.member "model" obj with
  | None -> bad ~id "model" "required object field is missing"
  | Some (Json.Obj _ as m) -> (
      match Json.member "kind" m with
      | Some (Json.Str kind) -> (
          let int_f field default =
            match Json.member field m with
            | None -> (
                match default with
                | Some d -> d
                | None -> bad ~id ("model." ^ field) "required integer field is missing")
            | Some v -> (
                match Json.to_int v with
                | Some i -> i
                | None -> bad ~id ("model." ^ field) "expected an integer")
          in
          let bool_f field default =
            match Json.member field m with
            | None -> default
            | Some (Json.Bool b) -> b
            | Some _ -> bad ~id ("model." ^ field) "expected a boolean"
          in
          match kind with
          | "coin" ->
              let p =
                match Json.member "p" m with
                | None -> Rat.half
                | Some (Json.Str s) -> (
                    match Rat.of_string s with
                    | r -> r
                    | exception _ ->
                        bad ~id "model.p" "not a rational (\"1/2\")")
                | Some _ -> bad ~id "model.p" "expected a rational string"
              in
              Coin { p }
          | "random_walk" -> Random_walk { span = int_f "span" (Some 4) }
          | "counter" -> Counter { bound = int_f "bound" (Some 3) }
          | "random_auto" ->
              Random_auto
                {
                  seed = int_f "seed" None;
                  states = int_f "states" (Some 6);
                  actions = int_f "actions" (Some 4);
                  branching = int_f "branching" (Some 2);
                }
          | "random_pca" ->
              Random_pca
                {
                  seed = int_f "seed" None;
                  members = int_f "members" (Some 4);
                  faults = bool_f "faults" false;
                }
          | "faulty_channel" -> Faulty_channel { seed = int_f "seed" None }
          | "committee" ->
              Committee
                {
                  validators = int_f "validators" (Some 3);
                  blocks = int_f "blocks" (Some 2);
                }
          | k ->
              bad ~id "model.kind"
                (Printf.sprintf
                   "unknown model kind %S (expected coin | random_walk | \
                    counter | random_auto | random_pca | faulty_channel | \
                    committee)"
                   k))
      | Some _ -> bad ~id "model.kind" "expected a string"
      | None -> bad ~id "model.kind" "required string field is missing")
  | Some _ -> bad ~id "model" "expected an object"

let parse_sched ~id obj =
  match Json.member "sched" obj with
  | None -> bad ~id "sched" "required object field is missing"
  | Some (Json.Obj _ as s) ->
      let kind =
        match Json.member "kind" s with
        | Some (Json.Str k) -> k
        | Some _ -> bad ~id "sched.kind" "expected a string"
        | None -> bad ~id "sched.kind" "required string field is missing"
      in
      let s_kind =
        match kind with
        | "uniform" -> Uniform
        | "first_enabled" -> First_enabled
        | "round_robin" -> Round_robin
        | k ->
            bad ~id "sched.kind"
              (Printf.sprintf
                 "unknown scheduler kind %S (expected uniform | \
                  first_enabled | round_robin)"
                 k)
      in
      let opt_int field =
        match Json.member field s with
        | None -> None
        | Some v -> (
            match Json.to_int v with
            | Some i -> Some i
            | None -> bad ~id ("sched." ^ field) "expected an integer")
      in
      {
        s_kind;
        s_fault_budget = opt_int "fault_budget";
        s_bound = opt_int "bound";
      }
  | Some _ -> bad ~id "sched" "expected an object"

let parse_query ~id obj =
  let q_model = parse_model ~id obj in
  let q_sched = parse_sched ~id obj in
  let q_depth = get_int ~id ~field:"depth" obj in
  if q_depth < 0 then bad ~id "depth" "must be non-negative";
  let q_compress =
    match Json.member "compress" obj with
    | None -> `Off
    | Some (Json.Str "off") -> `Off
    | Some (Json.Str "hcons") -> `Hcons
    | Some (Json.Str "quotient") -> `Quotient
    | Some _ -> bad ~id "compress" "expected \"off\" | \"hcons\" | \"quotient\""
  in
  let q_engine =
    match Json.member "engine" obj with
    | None -> `Auto
    | Some (Json.Str "auto") -> `Auto
    | Some (Json.Str "layered") -> `Layered
    | Some (Json.Str "subtree") -> `Subtree
    | Some _ -> bad ~id "engine" "expected \"auto\" | \"layered\" | \"subtree\""
  in
  let q_domains = get_opt_int ~id ~field:"domains" obj in
  (match q_domains with
  | Some d when d < 1 -> bad ~id "domains" "must be at least 1"
  | _ -> ());
  {
    q_model;
    q_sched;
    q_depth;
    q_compress;
    q_engine;
    q_domains;
    q_memo = get_bool ~id ~field:"memo" ~default:false obj;
    q_max_execs = get_opt_int ~id ~field:"max_execs" obj;
    q_max_width = get_opt_int ~id ~field:"max_width" obj;
  }

let parse_request line =
  let obj =
    match Json.parse line with
    | v -> v
    | exception Json.Parse_error msg -> bad "request" msg
  in
  (match obj with
  | Json.Obj _ -> ()
  | _ -> bad "request" "expected a JSON object");
  let id =
    match Json.member "id" obj with
    | Some v -> (
        match Json.to_int v with
        | Some i -> i
        | None -> bad "id" "expected an integer")
    | None -> bad "id" "required integer field is missing"
  in
  let op_name = get_str ~id ~field:"op" obj in
  let r_op =
    match op_name with
    | "ping" -> Ping
    | "stats" -> Stats
    | "shutdown" -> Shutdown
    | "measure" -> Measure (parse_query ~id obj)
    | "reach" ->
        let q = parse_query ~id obj in
        let bits = get_str ~id ~field:"state" obj in
        let state =
          match Cdse_util.Bits.of_string bits with
          | b -> b
          | exception Invalid_argument m -> bad ~id "state" m
        in
        Reach (q, state)
    | "emulate" ->
        let protocol =
          match get_str ~id ~field:"protocol" obj with
          | "channel" -> `Channel
          | "coin-flip" -> `Coin_flip
          | "secret-share" -> `Secret_share
          | "broadcast" -> `Broadcast
          | p ->
              bad ~id "protocol"
                (Printf.sprintf
                   "unknown protocol %S (expected channel | coin-flip | \
                    secret-share | broadcast)"
                   p)
        in
        Emulate { protocol; broken = get_bool ~id ~field:"broken" ~default:false obj }
    | o ->
        bad ~id "op"
          (Printf.sprintf
             "unknown op %S (expected ping | measure | reach | emulate | \
              stats | shutdown)"
             o)
  in
  { r_id = id; r_op }

(* Canonical keys. Rendered from the *parsed* specs (defaults applied), so
   spelling differences on the wire cannot split cache lines. *)

let model_key = function
  | Coin { p } -> Printf.sprintf "coin(p=%s)" (Rat.to_string p)
  | Random_walk { span } -> Printf.sprintf "walk(span=%d)" span
  | Counter { bound } -> Printf.sprintf "counter(bound=%d)" bound
  | Random_auto { seed; states; actions; branching } ->
      Printf.sprintf "rauto(seed=%d,s=%d,a=%d,b=%d)" seed states actions
        branching
  | Random_pca { seed; members; faults } ->
      Printf.sprintf "rpca(seed=%d,m=%d,f=%b)" seed members faults
  | Faulty_channel { seed } -> Printf.sprintf "fchan(seed=%d)" seed
  | Committee { validators; blocks } ->
      Printf.sprintf "committee(v=%d,b=%d)" validators blocks

let sched_key s =
  let kind =
    match s.s_kind with
    | Uniform -> "uniform"
    | First_enabled -> "first"
    | Round_robin -> "rr"
  in
  Printf.sprintf "%s(budget=%s,bound=%s)" kind
    (match s.s_fault_budget with Some k -> string_of_int k | None -> "-")
    (match s.s_bound with Some b -> string_of_int b | None -> "-")

let compress_key = function
  | `Off -> "off"
  | `Hcons -> "hcons"
  | `Quotient -> "quot"

let is_budgeted q = q.q_max_execs <> None || q.q_max_width <> None

let query_line q =
  let budget =
    if is_budgeted q then
      Printf.sprintf "|exec<=%s,width<=%s"
        (match q.q_max_execs with Some n -> string_of_int n | None -> "-")
        (match q.q_max_width with Some n -> string_of_int n | None -> "-")
    else ""
  in
  Printf.sprintf "%s|%s|%s%s" (model_key q.q_model) (sched_key q.q_sched)
    (compress_key q.q_compress) budget

let query_key q = Printf.sprintf "%s|d=%d" (query_line q) q.q_depth

(* Spec elaboration: deterministic by construction — the random families
   are seeded, the fixed families are closed terms. *)

let build_model = function
  | Coin { p } -> Cdse_gen.Workloads.coin ~p "c"
  | Random_walk { span } -> Cdse_gen.Workloads.random_walk ~span "w"
  | Counter { bound } -> Cdse_gen.Workloads.counter ~bound "k"
  | Random_auto { seed; states; actions; branching } ->
      Cdse_gen.Random_auto.make ~rng:(Rng.make seed) ~name:"ca"
        ~n_states:states ~n_actions:actions ~branching ()
  | Random_pca { seed; members; faults } ->
      Cdse_config.Pca.psioa
        (Cdse_gen.Random_pca.make ~rng:(Rng.make seed) ~n_members:members
           ~faults ())
  | Faulty_channel { seed } -> Cdse_gen.Workloads.faulty_channel ~seed
  | Committee { validators; blocks } ->
      Cdse_config.Pca.psioa
        (Cdse_dynamic.Committee.build ~max_validators:validators ~blocks
           "cmt")

let build_sched auto s =
  let base =
    match s.s_kind with
    | Uniform -> Scheduler.uniform auto
    | First_enabled -> Scheduler.first_enabled auto
    | Round_robin -> Scheduler.round_robin auto
  in
  let base =
    match s.s_fault_budget with
    | Some k -> Cdse_fault.Fault.budget_sched k base
    | None -> base
  in
  match s.s_bound with Some b -> Scheduler.bounded b base | None -> base
