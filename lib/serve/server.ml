open Cdse_prob
open Cdse_secure
module Obs = Cdse_obs.Obs

exception
  Protocol_error = Protocol.Protocol_error

exception Overloaded = Protocol.Overloaded

let c_queries = Obs.counter "serve.queries"
let c_errors = Obs.counter "serve.errors"
let g_queue = Obs.gauge "serve.queue.depth"
let h_latency = Obs.histogram "serve.latency_us"

(* Connections do raw-fd I/O (no stdlib channels): channels and fds fight
   over close ownership across threads, whereas one fd with one close is
   easy to reason about. Reads are line-buffered here; writes take the
   connection mutex so replies from different executors never interleave
   mid-line. *)
type conn = {
  fd : Unix.file_descr;
  rbuf : bytes;
  pending : Buffer.t;
  mutable scanned : int;
      (** offset into [pending] below which no newline exists — each
          incoming chunk is scanned once, so reading a long line stays
          linear instead of rescanning the whole buffer per chunk *)
  write_mutex : Mutex.t;
}

let read_line_fd conn =
  let rec take () =
    let len = Buffer.length conn.pending in
    let rec find i =
      if i >= len then None
      else if Buffer.nth conn.pending i = '\n' then Some i
      else find (i + 1)
    in
    match find conn.scanned with
    | Some i ->
        let s = Buffer.contents conn.pending in
        Buffer.clear conn.pending;
        Buffer.add_substring conn.pending s (i + 1) (String.length s - i - 1);
        conn.scanned <- 0;
        Some (String.sub s 0 i)
    | None -> (
        conn.scanned <- len;
        match Unix.read conn.fd conn.rbuf 0 (Bytes.length conn.rbuf) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes conn.pending conn.rbuf 0 n;
            take ()
        | exception Unix.Unix_error _ -> None)
  in
  take ()

let send conn json =
  let b = Bytes.of_string (Json.to_string json ^ "\n") in
  Mutex.lock conn.write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.write_mutex)
    (fun () ->
      let n = Bytes.length b in
      let rec go off =
        if off < n then go (off + Unix.write conn.fd b off (n - off))
      in
      (* A vanished client is not a server error: drop the reply. *)
      try go 0 with Unix.Unix_error _ -> ())

type job = { j_req : Protocol.request; j_conn : conn; j_enqueued : float }

type t = {
  sock : Unix.file_descr;
  path : string;
  engine : Engine.t;
  max_queue : int;
  jobs : job Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;  (** signalled on enqueue and at shutdown *)
  drained : Condition.t;  (** broadcast when queue + in-flight hit zero *)
  finished : Condition.t;  (** broadcast once fully stopped *)
  mutable inflight : int;
  mutable stopping : bool;  (** no further admissions; workers drain *)
  mutable stop_started : bool;
  mutable stopped : bool;
  mutable conns : conn list;
  mutable workers : Thread.t list;
  mutable acceptor : Thread.t option;
}

let socket_path t = t.path

(* Replies *)

let num i = Json.Num (float_of_int i)

let ok_reply id result =
  Json.Obj [ ("id", num id); ("ok", Json.Bool true); ("result", result) ]

let error_reply ~id ~kind ~field ~msg =
  Json.Obj
    [
      ("id", (match id with Some i -> num i | None -> Json.Null));
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("kind", Json.Str kind); ("field", Json.Str field); ("msg", Json.Str msg) ] );
    ]

let stats_json t =
  Mutex.lock t.m;
  let queued = Queue.length t.jobs and inflight = t.inflight in
  Mutex.unlock t.m;
  let c = Obs.counter_value in
  let lat = Obs.hist_stats h_latency in
  Json.Obj
    [
      ("queries", num (c "serve.queries"));
      ("errors", num (c "serve.errors"));
      ( "cache",
        Json.Obj
          [
            ("hits", num (c "serve.cache.hit"));
            ("misses", num (c "serve.cache.miss"));
            ("resumes", num (c "serve.cache.resume"));
            ("evictions", num (c "serve.cache.evict"));
            ( "entries",
              num
                (match Obs.gauge_value "serve.cache.entries" with
                | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
                | None -> 0) );
          ] );
      ( "models",
        Json.Obj
          [
            ("hits", num (c "serve.model.hit"));
            ("misses", num (c "serve.model.miss"));
          ] );
      ("queued", num queued);
      ("inflight", num inflight);
      ( "latency_us",
        Json.Obj
          [
            ("count", num lat.Obs.h_count);
            ("p50", num (Obs.hist_percentile lat 0.5));
            ("p90", num (Obs.hist_percentile lat 0.9));
            ("p99", num (Obs.hist_percentile lat 0.99));
            ("max", num lat.Obs.h_max);
          ] );
    ]

(* Executors *)

let run_op t (req : Protocol.request) =
  match req.r_op with
  | Protocol.Measure q ->
      let r = Engine.measure t.engine q in
      let tag, lost =
        match r.Engine.m_deficit with
        | None -> ("exact", Rat.zero)
        | Some l -> ("truncated", l)
      in
      let dist =
        match !(r.Engine.m_render) with
        | Some s -> Json.Raw s
        | None ->
            let s = Json.to_string (Codec.dist_to_json r.Engine.m_dist) in
            r.Engine.m_render := Some s;
            Json.Raw s
      in
      Json.Obj
        [
          ("depth", num q.Protocol.q_depth);
          ("tag", Json.Str tag);
          ("lost", Json.Str (Rat.to_string lost));
          ("dist", dist);
          ("cached", Json.Bool r.Engine.m_cached);
          ( "resumed_from",
            match r.Engine.m_resumed_from with Some d -> num d | None -> Json.Null );
        ]
  | Protocol.Reach (q, state) ->
      let p, cached = Engine.reach t.engine q ~state in
      Json.Obj
        [ ("prob", Json.Str (Rat.to_string p)); ("cached", Json.Bool cached) ]
  | Protocol.Emulate { protocol; broken } ->
      let v = Engine.emulate ~protocol ~broken in
      Json.Obj
        [
          ("holds", Json.Bool v.Impl.holds);
          ("worst", Json.Str (Rat.to_string v.Impl.worst));
          ( "detail",
            Json.List
              (List.map
                 (fun (s, d) ->
                   Json.List [ Json.Str s; Json.Str (Rat.to_string d) ])
                 v.Impl.detail) );
        ]
  | Protocol.Ping | Protocol.Stats | Protocol.Shutdown ->
      (* Answered inline on the reader thread, never enqueued. *)
      assert false

let worker_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.jobs then (* stopping, and nothing left to drain *)
      Mutex.unlock t.m
    else begin
      let job = Queue.pop t.jobs in
      t.inflight <- t.inflight + 1;
      Obs.set_gauge g_queue (string_of_int (Queue.length t.jobs));
      Mutex.unlock t.m;
      let reply =
        try ok_reply job.j_req.Protocol.r_id (run_op t job.j_req)
        with exn ->
          (* Engine failures (invalid_arg from a budget/engine clash, a
             broken model spec, …) poison only this request. *)
          Obs.incr c_errors;
          error_reply ~id:(Some job.j_req.Protocol.r_id) ~kind:"engine"
            ~field:"-" ~msg:(Printexc.to_string exn)
      in
      send job.j_conn reply;
      Obs.observe h_latency
        (int_of_float ((Unix.gettimeofday () -. job.j_enqueued) *. 1e6));
      Mutex.lock t.m;
      t.inflight <- t.inflight - 1;
      if t.inflight = 0 && Queue.is_empty t.jobs then
        Condition.broadcast t.drained;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

(* Admission *)

let enqueue t conn (req : Protocol.request) =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    Obs.incr c_errors;
    send conn
      (error_reply ~id:(Some req.Protocol.r_id) ~kind:"overloaded" ~field:"op"
         ~msg:"server is shutting down")
  end
  else if Queue.length t.jobs >= t.max_queue then begin
    let depth = Queue.length t.jobs in
    Mutex.unlock t.m;
    Obs.incr c_errors;
    let exn =
      Protocol.Overloaded
        { id = Some req.Protocol.r_id; queue_depth = depth; cap = t.max_queue }
    in
    send conn
      (error_reply ~id:(Some req.Protocol.r_id) ~kind:"overloaded" ~field:"op"
         ~msg:(Printexc.to_string exn))
  end
  else begin
    Queue.push
      { j_req = req; j_conn = conn; j_enqueued = Unix.gettimeofday () }
      t.jobs;
    Obs.set_gauge g_queue (string_of_int (Queue.length t.jobs));
    Condition.signal t.nonempty;
    Mutex.unlock t.m
  end

(* Shutdown machinery. [begin_stop] wins for exactly one caller; that
   caller drains (queued + in-flight jobs all reply) and then [finish]es:
   sockets closed, path unlinked, waiters released. *)

let begin_stop t =
  Mutex.lock t.m;
  let first = not t.stop_started in
  t.stop_started <- true;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  first

let drain t =
  Mutex.lock t.m;
  while not (Queue.is_empty t.jobs && t.inflight = 0) do
    Condition.wait t.drained t.m
  done;
  Mutex.unlock t.m

let finish t =
  Mutex.lock t.m;
  let conns = t.conns in
  t.conns <- [];
  t.stopped <- true;
  Condition.broadcast t.finished;
  Mutex.unlock t.m;
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  List.iter
    (fun c ->
      (* [shutdown] (not just close) reliably wakes a reader blocked in
         [Unix.read] on another thread. *)
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  try Unix.unlink t.path with Unix.Unix_error _ -> ()

let handle_shutdown t conn id =
  if begin_stop t then begin
    drain t;
    send conn (ok_reply id (Json.Str "bye"));
    finish t
  end
  else
    (* A concurrent shutdown already owns the drain; just acknowledge. *)
    send conn (ok_reply id (Json.Str "bye"))

(* Readers *)

let close_conn t conn =
  Mutex.lock t.m;
  let mine = List.memq conn t.conns in
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.m;
  if mine then (
    try Unix.close conn.fd with Unix.Unix_error _ -> ())

let reader_loop t conn =
  let rec loop () =
    match read_line_fd conn with
    | None -> close_conn t conn
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        (match Protocol.parse_request line with
        | exception Protocol.Protocol_error { id; field; msg } ->
            Obs.incr c_errors;
            send conn (error_reply ~id ~kind:"protocol" ~field ~msg)
        | req -> (
            Obs.incr c_queries;
            match req.Protocol.r_op with
            | Protocol.Ping -> send conn (ok_reply req.Protocol.r_id (Json.Str "pong"))
            | Protocol.Stats -> send conn (ok_reply req.Protocol.r_id (stats_json t))
            | Protocol.Shutdown -> handle_shutdown t conn req.Protocol.r_id
            | Protocol.Measure _ | Protocol.Reach _ | Protocol.Emulate _ ->
                enqueue t conn req));
        loop ()
  in
  try loop () with _ -> close_conn t conn

(* Acceptor: a select loop with a short tick, so shutdown never races a
   blocking [accept] (closing a listening socket under an accept blocked
   in another thread is not portable). *)

let acceptor_loop t =
  let stopping () =
    Mutex.lock t.m;
    let s = t.stopping in
    Mutex.unlock t.m;
    s
  in
  let rec loop () =
    if not (stopping ()) then
      match Unix.select [ t.sock ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept t.sock with
          | exception Unix.Unix_error _ -> loop ()
          | fd, _ ->
              let conn =
                {
                  fd;
                  rbuf = Bytes.create 4096;
                  pending = Buffer.create 256;
                  scanned = 0;
                  write_mutex = Mutex.create ();
                }
              in
              Mutex.lock t.m;
              if t.stopping then begin
                Mutex.unlock t.m;
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                t.conns <- conn :: t.conns;
                Mutex.unlock t.m;
                ignore (Thread.create (fun () -> reader_loop t conn) ())
              end;
              loop ())
  in
  try loop () with Unix.Unix_error _ -> ()

(* Lifecycle *)

let start ?(domains = 1) ?(workers = 2) ?(cache_cap = 64) ?(max_queue = 64)
    ~socket () =
  Obs.set_enabled true;
  (* A client vanishing mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock 16;
  let t =
    {
      sock;
      path = socket;
      engine = Engine.create ~cache_cap ~domains ();
      max_queue;
      jobs = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      finished = Condition.create ();
      inflight = 0;
      stopping = false;
      stop_started = false;
      stopped = false;
      conns = [];
      workers = [];
      acceptor = None;
    }
  in
  t.workers <- List.init (max 1 workers) (fun _ -> Thread.create worker_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let wait t =
  Mutex.lock t.m;
  while not t.stopped do
    Condition.wait t.finished t.m
  done;
  Mutex.unlock t.m;
  (match t.acceptor with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  List.iter (fun th -> try Thread.join th with _ -> ()) t.workers

let stop t =
  if begin_stop t then begin
    drain t;
    finish t
  end;
  wait t
