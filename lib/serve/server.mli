(** The [cdse_serve] daemon: measure-as-a-service over a Unix socket.

    Accepts any number of concurrent connections, each carrying
    newline-delimited JSON requests (see {!Protocol} for the grammar).
    Cheap ops ([ping], [stats], [shutdown]) are answered inline on the
    connection's reader thread; measure-bearing ops ([measure], [reach],
    [emulate]) are enqueued onto a bounded job queue drained by a pool of
    executor threads backed by one shared {!Engine} — so every connection
    sees the same model registry and result cache, and multicore queries
    batch onto one domain-pool budget.

    Replies carry the request's [id], so a client may pipeline; replies to
    {e queued} ops can overtake each other, which is what the id is for.
    Per-connection writes are serialized, so replies never interleave
    mid-line.

    Determinism: the daemon returns bit-identical results to in-process
    [Measure.exec_dist] — distributions, truncation tags and deficits —
    regardless of cache state, request interleaving, executor count or
    per-request engine/domain selection. The protocol test suite enforces
    this differentially. *)

exception
  Protocol_error of { id : int option; field : string; msg : string }
(** = {!Protocol.Protocol_error}. *)

exception Overloaded of { id : int option; queue_depth : int; cap : int }
(** = {!Protocol.Overloaded}. *)

type t

val start :
  ?domains:int ->
  ?workers:int ->
  ?cache_cap:int ->
  ?max_queue:int ->
  socket:string ->
  unit ->
  t
(** Bind [socket] (an existing socket file is replaced), spawn the
    acceptor and [workers] executor threads (default 2), and return
    immediately. [domains] (default 1) is the default per-query domain
    count; [cache_cap] (default 64) bounds the result cache; [max_queue]
    (default 64) bounds the job queue, beyond which measure-bearing
    requests are rejected with an [overloaded] error. Enables
    {!Cdse_obs.Obs} stats collection (the [stats] op reads them). *)

val stop : t -> unit
(** Graceful shutdown, also triggered by the wire [shutdown] op: stop
    admitting work, drain every queued and in-flight job (their replies
    are still delivered), then close the listening socket, close client
    connections and unlink the socket file. Idempotent. *)

val wait : t -> unit
(** Block until the server has fully shut down (via {!stop} or a wire
    [shutdown]). *)

val socket_path : t -> string
