(** Exact JSON encoding of measure results.

    States and actions travel as their canonical bit-string encodings
    ([Value.to_bits] / [Action.to_bits] rendered by [Bits.to_string]), and
    probabilities as [Rat.to_string] rationals — the wire never touches
    floating point, so a decoded distribution is {e bit-identical} to the
    encoded one. Used by the daemon to render replies and by the test
    client to reconstruct distributions for differential comparison. *)

open Cdse_prob
open Cdse_psioa

val exec_to_json : Exec.t -> Json.t
(** [{"start": bits, "steps": [[action-bits, state-bits], ...]}]. *)

val exec_of_json : Json.t -> Exec.t
(** Raises [Invalid_argument] on a malformed encoding. *)

val dist_to_json : Exec.t Dist.t -> Json.t
(** [{"items": [[exec, rat], ...], "mass": rat, "deficit": rat,
    "size": int}]. Items are emitted in the distribution's canonical
    (sorted) order. *)

val dist_of_json : Json.t -> Exec.t Dist.t
(** Rebuilds via [Dist.make ~compare:Exec.compare], i.e. renormalizes to
    the same canonical form the engines produce; raises
    [Invalid_argument] on malformed input. *)
