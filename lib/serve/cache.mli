(** LRU result cache with incremental-deepening frontier reuse.

    Keys are the canonical {!Protocol.query_key} strings. Each entry
    stores the exact distribution (plus truncation deficit for budgeted
    queries) and, for unbudgeted queries, the engine frontier at the
    entry's depth, so that a later request on the same {!Protocol.query_line}
    at depth [d + k] can resume from the deepest cached frontier at depth
    [<= d + k] instead of recomputing from the root.

    Thread-safe: every operation takes the cache mutex (entries are
    immutable apart from the LRU tick, and the stored distributions are
    never mutated, so handing them out unlocked is safe). Instruments
    [serve.cache.hit] / [serve.cache.miss] / [serve.cache.evict] and the
    [serve.cache.entries] gauge. *)

open Cdse_prob
open Cdse_psioa
open Cdse_sched

type entry = {
  e_line : string;
  e_depth : int;
  e_dist : Exec.t Dist.t;
  e_deficit : Rat.t option;  (** [Some _] iff the stored result was truncated *)
  e_frontier : Measure.frontier option;
  e_render : string option ref;
      (** Rendered dist JSON, memoized by the server on first reply:
          rendering walks every state through [Value.to_bits] and costs
          more than the measure itself for small models, so warm hits
          must not pay it again. Benign under races — both writers
          produce the identical string. *)
}

type t

val create : cap:int -> t
(** [cap >= 1] entries; least-recently-used eviction beyond that. *)

val find : t -> key:string -> entry option
(** Exact-key lookup; refreshes the entry's LRU position and counts a hit
    or miss. *)

val best_frontier : t -> line:string -> depth:int -> Measure.frontier option
(** Deepest cached frontier on [line] with [f_depth <= depth] — the
    resume point for incremental deepening. Does not count hit/miss and
    does not refresh LRU positions (a resume re-adds the deeper entry
    anyway). *)

val add :
  t ->
  key:string ->
  line:string ->
  depth:int ->
  dist:Exec.t Dist.t ->
  ?deficit:Rat.t ->
  ?frontier:Measure.frontier ->
  ?render:string option ref ->
  unit ->
  unit
(** Insert (or overwrite) and evict the least-recently-used entry if over
    capacity. Overwriting an existing key is not an error — two executors
    racing on the same query both insert the same (deterministic) result.
    [render] shares the caller's render-memo cell with the entry (fresh
    and empty by default). *)

val size : t -> int
