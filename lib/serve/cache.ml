open Cdse_prob
open Cdse_psioa
open Cdse_sched
module Obs = Cdse_obs.Obs

let c_hit = Obs.counter "serve.cache.hit"
let c_miss = Obs.counter "serve.cache.miss"
let c_evict = Obs.counter "serve.cache.evict"
let g_entries = Obs.gauge "serve.cache.entries"

type entry = {
  e_line : string;
  e_depth : int;
  e_dist : Exec.t Dist.t;
  e_deficit : Rat.t option;
  e_frontier : Measure.frontier option;
  e_render : string option ref;
      (* Rendered dist JSON, filled by the server on first reply and
         reused on every later hit — rendering costs more than the
         measure for small models (Value.to_bits per state), so a warm
         hit must skip it. A lost race double-renders the identical
         string; last write wins, both are correct. *)
}

(* The LRU clock is a monotonic tick; eviction scans for the minimum. The
   cap is small (tens of entries — each holds a full distribution), so the
   O(n) scan is noise next to the measures the cache is saving. *)
type slot = { entry : entry; mutable tick : int }

type t = {
  tbl : (string, slot) Hashtbl.t;
  mutex : Mutex.t;
  cap : int;
  mutable clock : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Serve.Cache.create: cap must be >= 1";
  { tbl = Hashtbl.create (2 * cap); mutex = Mutex.create (); cap; clock = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some slot ->
          slot.tick <- tick t;
          Obs.incr c_hit;
          Some slot.entry
      | None ->
          Obs.incr c_miss;
          None)

let best_frontier t ~line ~depth =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ { entry = e; _ } best ->
          match e.e_frontier with
          | Some f
            when e.e_line = line
                 && f.Measure.f_depth <= depth
                 && (match best with
                    | None -> true
                    | Some b -> f.Measure.f_depth > b.Measure.f_depth) ->
              Some f
          | _ -> best)
        t.tbl None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot best ->
        match best with
        | Some (_, best_tick) when best_tick <= slot.tick -> best
        | _ -> Some (key, slot.tick))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      Obs.incr c_evict
  | None -> ()

let add t ~key ~line ~depth ~dist ?deficit ?frontier ?(render = ref None) () =
  locked t (fun () ->
      let entry =
        {
          e_line = line;
          e_depth = depth;
          e_dist = dist;
          e_deficit = deficit;
          e_frontier = frontier;
          e_render = render;
        }
      in
      if not (Hashtbl.mem t.tbl key) && Hashtbl.length t.tbl >= t.cap then
        evict_lru t;
      Hashtbl.replace t.tbl key { entry; tick = tick t };
      Obs.set_gauge g_entries (string_of_int (Hashtbl.length t.tbl)))

let size t = locked t (fun () -> Hashtbl.length t.tbl)
