(* Minimal JSON codec for the newline-delimited wire protocol. Hand-rolled
   recursive-descent parser (same policy as the bench validator: the repo
   carries no JSON dependency). Exact quantities travel as strings, so the
   float representation of [Num] only ever carries ids and small counts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" w)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   (* Code points are decoded to a single byte when they fit
                      (the protocol is ASCII); larger ones are rejected. *)
                   if !pos + 4 >= n then fail !pos "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail !pos "bad \\u escape"
                   in
                   if code > 0xff then fail !pos "non-ASCII \\u escape"
                   else Buffer.add_char buf (Char.chr code);
                   pos := !pos + 4
               | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail start (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing content";
  v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Raw s -> Buffer.add_string buf s
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
