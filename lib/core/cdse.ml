(** Composable Dynamic Secure Emulation — public API.

    Executable semantics for the framework of Civit & Potop-Butucaru,
    {e Brief Announcement: Composable Dynamic Secure Emulation} (SPAA
    2022): dynamic probabilistic I/O automata, schedulers and insight
    functions, configuration automata with run-time creation/destruction,
    the bounded layer, structured automata, adversaries, the dummy
    adversary, and the composable secure-emulation relation.

    The layers, bottom-up:

    - {!Bits}, {!Cost}, {!Poly}: encodings and the step meter (Section 4.1).
    - {!Obs}: engine observability — counters, histograms, event sink.
    - {!Trace}: span tracing — per-domain timelines, Chrome-trace export.
    - {!Bignat}, {!Rat}, {!Dist}, {!Stat}, {!Rng}: exact probability.
    - {!Value}, {!Action}, {!Action_set}, {!Sigs}, {!Psioa}, {!Exec},
      {!Compose}, {!Hide}, {!Rename}, {!Registry}: PSIOA (Section 2).
    - {!Scheduler}, {!Schema}, {!Measure}, {!Insight}, {!Balance}:
      schedulers and external perception (Section 3).
    - {!Fault}: composable fault injection — crash wrappers, adversarial
      channels, fault injectors and scheduler-level fault budgets.
    - {!Config}, {!Ctrans}, {!Pca}: configuration automata (Section 2.5–6).
    - {!Encode}, {!Machines}, {!Bounded}, {!Family}, {!Negligible}:
      the bounded layer (Sections 4.1–4.5).
    - {!Impl}, {!Structured}, {!Spca}, {!Adversary}, {!Dummy},
      {!Forwarding}, {!Emulation}: implementation and secure emulation
      (Sections 4.6–4.9).
    - {!Primitives}, {!Secure_channel}, {!Coin_flip}: toy cryptographic
      protocols; {!Subchain}, {!Ledger}, {!Manager}, {!Dynamic_system}:
      the dynamic subchain workload. *)

(* util *)
module Bits = Cdse_util.Bits
module Cost = Cdse_util.Cost
module Poly = Cdse_util.Poly
module Order = Cdse_util.Order
module Pretty = Cdse_util.Pretty

(* obs *)
module Obs = Cdse_obs.Obs
module Trace = Cdse_obs.Trace

(* prob *)
module Bignat = Cdse_prob.Bignat
module Rat = Cdse_prob.Rat
module Dist = Cdse_prob.Dist
module Stat = Cdse_prob.Stat
module Rng = Cdse_prob.Rng
module Fprob = Cdse_prob.Fprob

(* psioa *)
module Value = Cdse_psioa.Value
module Action = Cdse_psioa.Action
module Action_set = Cdse_psioa.Action_set
module Sigs = Cdse_psioa.Sigs
module Vdist = Cdse_psioa.Vdist
module Psioa = Cdse_psioa.Psioa
module Exec = Cdse_psioa.Exec
module Compose = Cdse_psioa.Compose
module Hide = Cdse_psioa.Hide
module Rename = Cdse_psioa.Rename
module Registry = Cdse_psioa.Registry
module Bisim = Cdse_psioa.Bisim
module Dump = Cdse_psioa.Dump
module Dsl = Cdse_psioa.Dsl

(* sched *)
module Scheduler = Cdse_sched.Scheduler
module Schema = Cdse_sched.Schema
module Measure = Cdse_sched.Measure
module Par_measure = Cdse_sched.Par_measure
module Insight = Cdse_sched.Insight
module Balance = Cdse_sched.Balance
module Task = Cdse_sched.Task

(* fault *)
module Fault = Cdse_fault.Fault

(* config *)
module Config = Cdse_config.Config
module Ctrans = Cdse_config.Ctrans
module Pca = Cdse_config.Pca

(* bounded *)
module Encode = Cdse_bounded.Encode
module Machines = Cdse_bounded.Machines
module Bounded = Cdse_bounded.Bounded
module Family = Cdse_bounded.Family
module Negligible = Cdse_bounded.Negligible

(* secure *)
module Impl = Cdse_secure.Impl
module Structured = Cdse_secure.Structured
module Spca = Cdse_secure.Spca
module Adversary = Cdse_secure.Adversary
module Dummy = Cdse_secure.Dummy
module Forwarding = Cdse_secure.Forwarding
module Emulation = Cdse_secure.Emulation
module Sampled = Cdse_secure.Sampled

(* crypto *)
module Primitives = Cdse_crypto.Primitives
module Secure_channel = Cdse_crypto.Secure_channel
module Coin_flip = Cdse_crypto.Coin_flip
module Secret_share = Cdse_crypto.Secret_share
module Broadcast = Cdse_crypto.Broadcast
module Aggregation = Cdse_crypto.Aggregation

(* dynamic *)
module Subchain = Cdse_dynamic.Subchain
module Ledger = Cdse_dynamic.Ledger
module Manager = Cdse_dynamic.Manager
module Dynamic_system = Cdse_dynamic.System
module Committee = Cdse_dynamic.Committee

(* serve *)
module Serve = Cdse_serve.Server
module Serve_protocol = Cdse_serve.Protocol
module Serve_json = Cdse_serve.Json

(* gen *)
module Workloads = Cdse_gen.Workloads
module Sworkloads = Cdse_gen.Sworkloads
module Random_auto = Cdse_gen.Random_auto
module Monotone = Cdse_gen.Monotone
module Random_pca = Cdse_gen.Random_pca
