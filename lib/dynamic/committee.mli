(** Dynamically reconfigurable voting committee — the paper's blockchain
    motivation as a PCA.

    A chair manages a committee of validator automata that are created
    ([add]) and destroyed ([retire]) at run time. Blocks are submitted by
    the environment; the chair broadcasts a proposal, the {e currently
    alive} validators vote (in adversary-chosen order), and the chair
    commits once every member has voted. This is the replicated-state-
    machine shape the introduction motivates, with dynamic membership
    exercising configuration creation/destruction (Definitions 2.12/2.14).

    Interface of instance [n] with validator budget [max_validators] over
    blocks [0..blocks-1]:
    - environment: [n.submit(b)] (EI), [n.commit(b)] (EO);
    - scheduling surface: [n.add_i], [n.retire_i], [n.propose(b)],
      [n.vote_i(b)] (all locally controlled: the scheduler interleaves
      them). *)

open Cdse_psioa
open Cdse_config

val submit : string -> int -> Action.t
val commit : string -> int -> Action.t
val add : string -> int -> Action.t
val retire : string -> int -> Action.t
val propose : string -> int -> Action.t
val vote : string -> int -> int -> Action.t
(** [vote n i b]: validator [i] votes for block [b]. *)

val validator_name : string -> int -> string

val crash : string -> int -> Action.t
(** [crash n i]: validator [i] fails (destroyed without the chair's
    knowledge) — a free input the fault model injects. *)

val validator : n:string -> blocks:int -> int -> Psioa.t
(** The bare validator automaton [i] of instance [n] (exactly what
    {!build} registers): [idle → (propose b) → voting b → (vote) → idle],
    destroyed by [retire]/[crash]. Exposed so fault harnesses can wrap or
    mutate a member and re-register it via [?wrap_validator]. *)

val build :
  ?max_validators:int ->
  ?blocks:int ->
  ?quorum:[ `All | `At_least of int ] ->
  ?wrap_validator:(int -> Psioa.t -> Psioa.t) ->
  string ->
  Pca.t
(** The committee PCA: chair + dynamically created validators. The chair
    only reconfigures while idle, so a proposal always reaches a stable
    membership. [quorum] selects unanimity (default) or a crash-tolerant
    threshold: with [`At_least t] a block commits once [t] votes arrive,
    even if other validators crashed mid-round.

    {b [`All] deadlocks under a single crash.} The unanimity rule waits
    for {e every member the chair counts}; a {!crash} destroys a
    validator without the chair's knowledge, so the crashed member's vote
    never arrives, [commit] never becomes enabled, and the round wedges
    permanently — the classic fail-stop liveness failure of unanimous
    consensus. The mitigation is a threshold quorum: with [`At_least t]
    and at most [members − t] crashes per round, the remaining votes
    still reach [t] and commit probability stays 1. The regression test
    [fault-tolerance] in [test/test_dynamic.ml] pins both behaviours as
    exact reachability probabilities (via [Fault.injector] +
    [Fault.budget]), and experiment E17 sweeps the crash budget.

    [wrap_validator i v] (default: identity) transforms validator [i]
    before registration — the hook dynamic-compromise harnesses use to
    wrap members with [Fault.compromise] or splice in a mutant. The
    wrapped automaton is renamed back to {!validator_name}[ n i], since
    the registry and the [created] mapping key members by name. *)

val members : Pca.t -> Value.t -> int list
(** Validator indices the chair currently counts as members. *)

val committed : Pca.t -> Value.t -> int list
(** Blocks committed so far (in order), read off the chair's state. *)

val collecting : Pca.t -> Value.t -> (int * int list) option
(** While a proposal is in flight: the block and the votes collected so
    far. Used to state the safety property "commit enabled ⟹ every member
    voted" externally. *)

(** {2 Secure emulation of the atomic functionality}

    The committee PCA, structured (Definitions 4.20–4.22): [submit] and
    [commit] are environment actions; adds, retires, proposals and votes
    are the adversary-visible scheduling surface. The {e ideal}
    functionality commits atomically. This is the [(resp. PCA)] half of
    Definition 4.26 exercised on a genuinely dynamic system. *)

val structured : Pca.t -> string -> Cdse_secure.Structured.t
(** Structured view of a committee PCA for instance name [n]. *)

val structured_psioa : Psioa.t -> string -> Cdse_secure.Structured.t
(** Structured view of an arbitrary composite containing instance [n] —
    e.g. the committee composed with a {!Cdse_fault.Fault.injector} of
    compromise actions: [submit]/[commit] stay environment actions, every
    other external action (adds, retires, votes, compromises) is the
    adversary surface. *)

val ideal : ?blocks:int -> string -> Cdse_secure.Structured.t
(** Atomic-commit functionality: [submit(b)] then [commit(b)], no
    adversary surface. *)

val env_commit : ?block:int -> string -> Psioa.t
(** Environment: submits a block and accepts when it commits. *)
