open Cdse_psioa
open Cdse_config

let acti name v = Action.make ~payload:(Value.int v) name

let submit n b = acti (n ^ ".submit") b
let commit n b = acti (n ^ ".commit") b
let add n i = Action.make (Printf.sprintf "%s.add%d" n i)
let retire n i = Action.make (Printf.sprintf "%s.retire%d" n i)
let propose n b = acti (n ^ ".propose") b
let vote n i b = acti (Printf.sprintf "%s.vote%d" n i) b
let crash n i = Action.make (Printf.sprintf "%s.crash%d" n i)
let validator_name n i = Printf.sprintf "%s.val%d" n i

let sig_io ?(i = []) ?(o = []) () =
  Sigs.make ~input:(Action_set.of_list i) ~output:(Action_set.of_list o)
    ~internal:Action_set.empty

(* ------------------------------------------------------------ validator *)

(* idle → (propose b) → voting b → (vote) → idle; (retire) → dead. *)
let validator ~n ~blocks i =
  let idle = Value.tag "v-idle" Value.unit in
  let voting b = Value.tag "v-voting" (Value.int b) in
  let dead = Value.tag "v-dead" Value.unit in
  let proposals = List.init blocks (propose n) in
  (* [crash] is a second destruction path, accepted in every live phase —
     unlike [retire] it is not chair-initiated bookkeeping but a fault the
     chair never observes; the quorum variant must tolerate it. *)
  let signature q =
    match q with
    | Value.Tag ("v-idle", _) -> sig_io ~i:(retire n i :: crash n i :: proposals) ()
    | Value.Tag ("v-voting", Value.Int b) ->
        sig_io ~i:[ retire n i; crash n i ] ~o:[ vote n i b ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("v-idle", _) ->
        if Action.equal a (retire n i) || Action.equal a (crash n i) then Some (Vdist.dirac dead)
        else
          List.find_map
            (fun b -> if Action.equal a (propose n b) then Some (Vdist.dirac (voting b)) else None)
            (List.init blocks Fun.id)
    | Value.Tag ("v-voting", Value.Int b) ->
        if Action.equal a (vote n i b) then Some (Vdist.dirac idle)
        else if Action.equal a (retire n i) || Action.equal a (crash n i) then
          Some (Vdist.dirac dead)
        else None
    | _ -> None
  in
  Psioa.make ~name:(validator_name n i) ~start:idle ~signature ~transition

(* ----------------------------------------------------------------- chair *)

(* State: members (validator indices), next fresh index, committed blocks,
   phase (idle | collecting (block, votes)). The chair is the creating
   automaton: each addᵢ creates validator i through the PCA's created
   mapping; retireᵢ moves validator i to its dead state and configuration
   reduction removes it. Reconfiguration only happens while idle.

   [quorum] is the commit threshold: [`All] demands every member's vote
   (the unanimous committee); [`At_least t] commits as soon as [t] votes
   arrived — the crash-tolerant variant, which also tolerates validators
   dying mid-round ([crash] inputs are accepted in every phase). *)
let chair ?(quorum = `All) ~n ~max_validators ~blocks () =
  let ints l = Value.list (List.map Value.int l) in
  let of_ints = function
    | Value.List l -> List.filter_map (function Value.Int i -> Some i | _ -> None) l
    | _ -> []
  in
  let idle_phase = Value.tag "idle" Value.unit in
  let collecting b votes = Value.tag "collecting" (Value.pair (Value.int b) (ints votes)) in
  let st ~members ~fresh ~log ~phase =
    Value.tag "chair" (Value.list [ ints members; Value.int fresh; ints log; phase ])
  in
  let parse q =
    match q with
    | Value.Tag ("chair", Value.List [ m; Value.Int fresh; lg; phase ]) ->
        Some (of_ints m, fresh, of_ints lg, phase)
    | _ -> None
  in
  let block_ids = List.init blocks Fun.id in
  let signature q =
    match parse q with
    | None -> Sigs.empty
    | Some (members, fresh, _, phase) -> (
        match phase with
        | Value.Tag ("idle", _) ->
            let adds = if fresh < max_validators then [ add n fresh ] else [] in
            let retires = List.map (retire n) members in
            sig_io ~i:(List.map (submit n) block_ids) ~o:(adds @ retires) ()
        | Value.Tag ("collecting", Value.Pair (Value.Int b, votes_v)) ->
            let votes = of_ints votes_v in
            let missing = List.filter (fun i -> not (List.mem i votes)) members in
            let reached =
              match quorum with
              | `All -> missing = []
              | `At_least t -> List.length votes >= t
            in
            (* Under a threshold quorum, late votes remain acceptable even
               after the quorum is reached (they race with the commit). *)
            sig_io
              ~i:(List.map (fun i -> vote n i b) missing)
              ~o:(if reached then [ commit n b ] else [])
              ()
        | Value.Tag ("proposing", Value.Int b) -> sig_io ~o:[ propose n b ] ()
        | _ -> Sigs.empty)
  in
  let transition q a =
    match parse q with
    | None -> None
    | Some (members, fresh, log, phase) -> (
        match phase with
        | Value.Tag ("idle", _) ->
            if fresh < max_validators && Action.equal a (add n fresh) then
              Some
                (Vdist.dirac
                   (st ~members:(members @ [ fresh ]) ~fresh:(fresh + 1) ~log ~phase:idle_phase))
            else (
              match
                List.find_opt (fun i -> Action.equal a (retire n i)) members
              with
              | Some i ->
                  Some
                    (Vdist.dirac
                       (st
                          ~members:(List.filter (fun j -> j <> i) members)
                          ~fresh ~log ~phase:idle_phase))
              | None ->
                  List.find_map
                    (fun b ->
                      if Action.equal a (submit n b) then
                        Some
                          (Vdist.dirac
                             (st ~members ~fresh ~log ~phase:(Value.tag "proposing" (Value.int b))))
                      else None)
                    block_ids)
        | Value.Tag ("proposing", Value.Int b) when Action.equal a (propose n b) ->
            Some (Vdist.dirac (st ~members ~fresh ~log ~phase:(collecting b [])))
        | Value.Tag ("collecting", Value.Pair (Value.Int b, votes_v)) -> (
            let votes = of_ints votes_v in
            let missing = List.filter (fun i -> not (List.mem i votes)) members in
            let reached =
              match quorum with
              | `All -> missing = []
              | `At_least t -> List.length votes >= t
            in
            if reached && Action.equal a (commit n b) then
              Some (Vdist.dirac (st ~members ~fresh ~log:(log @ [ b ]) ~phase:idle_phase))
            else
              match
                List.find_opt (fun i -> Action.equal a (vote n i b)) missing
              with
              | Some i ->
                  Some
                    (Vdist.dirac
                       (st ~members ~fresh ~log
                          ~phase:(collecting b (List.sort Int.compare (i :: votes)))))
              | None -> None)
        | _ -> None)
  in
  Psioa.make ~name:(n ^ ".chair")
    ~start:(st ~members:[] ~fresh:0 ~log:[] ~phase:idle_phase)
    ~signature ~transition

(* ------------------------------------------------------------------ PCA *)

let build ?(max_validators = 3) ?(blocks = 2) ?quorum ?(wrap_validator = fun _ v -> v) n =
  (* The registry and the [created] mapping key members by name, so a
     wrapped validator (e.g. [Fault.compromise]) is renamed back to its
     canonical [validator_name] — wrappers change behaviour, not identity. *)
  let member i =
    Psioa.rename_auto (validator_name n i) (wrap_validator i (validator ~n ~blocks i))
  in
  let registry =
    Registry.of_list
      (chair ?quorum ~n ~max_validators ~blocks () :: List.init max_validators member)
  in
  let created _config a =
    (* addᵢ creates validator i. *)
    match
      List.find_opt
        (fun i -> Action.equal a (add n i))
        (List.init max_validators Fun.id)
    with
    | Some i -> [ validator_name n i ]
    | None -> []
  in
  Pca.make ~name:(n ^ "-committee") ~registry
    ~init:(Config.start_of registry [ n ^ ".chair" ])
    ~created ()

let chair_state pca q =
  List.find_map
    (fun (id, s) -> if Astring.String.is_suffix ~affix:".chair" id then Some s else None)
    (Config.entries (Pca.config_of pca q))

let members pca q =
  match chair_state pca q with
  | Some (Value.Tag ("chair", Value.List [ Value.List m; _; _; _ ])) ->
      List.filter_map (function Value.Int i -> Some i | _ -> None) m
  | _ -> []

let collecting pca q =
  match chair_state pca q with
  | Some (Value.Tag ("chair", Value.List [ _; _; _; Value.Tag ("collecting", Value.Pair (Value.Int b, Value.List vs)) ])) ->
      Some (b, List.filter_map (function Value.Int i -> Some i | _ -> None) vs)
  | _ -> None

let committed pca q =
  match chair_state pca q with
  | Some (Value.Tag ("chair", Value.List [ _; _; Value.List lg; _ ])) ->
      List.filter_map (function Value.Int i -> Some i | _ -> None) lg
  | _ -> []


(* ---------------------------------------------- structured view & ideal *)

let structured_psioa auto n =
  let eact q =
    let ext = Sigs.ext (Psioa.signature auto q) in
    Action_set.filter
      (fun a ->
        let base = Cdse_psioa.Action.name a in
        String.equal base (n ^ ".submit") || String.equal base (n ^ ".commit"))
      ext
  in
  Cdse_secure.Structured.make auto ~eact

let structured pca n = structured_psioa (Pca.psioa pca) n

let ideal ?(blocks = 2) n =
  let idle = Value.tag "ic-idle" Value.unit in
  let pending b = Value.tag "ic-pending" (Value.int b) in
  let block_ids = List.init blocks Fun.id in
  let signature q =
    match q with
    | Value.Tag ("ic-idle", _) -> sig_io ~i:(List.map (submit n) block_ids) ()
    | Value.Tag ("ic-pending", Value.Int b) -> sig_io ~o:[ commit n b ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ic-idle", _) ->
        List.find_map
          (fun b -> if Action.equal a (submit n b) then Some (Vdist.dirac (pending b)) else None)
          block_ids
    | Value.Tag ("ic-pending", Value.Int b) when Action.equal a (commit n b) ->
        Some (Vdist.dirac idle)
    | _ -> None
  in
  let psioa = Psioa.make ~name:(n ^ ".ideal") ~start:idle ~signature ~transition in
  Cdse_secure.Structured.make psioa ~eact:(fun q -> Sigs.ext (signature q))

let env_commit ?(block = 0) n =
  let s k = Value.tag "ce" (Value.int k) in
  let acc = Action.make "acc" in
  let signature q =
    match q with
    | Value.Tag ("ce", Value.Int 0) -> sig_io ~o:[ submit n block ] ()
    | Value.Tag ("ce", Value.Int 1) -> sig_io ~i:[ commit n block ] ()
    | Value.Tag ("ce", Value.Int 2) -> sig_io ~o:[ acc ] ()
    | _ -> Sigs.empty
  in
  let transition q a =
    match q with
    | Value.Tag ("ce", Value.Int 0) when Action.equal a (submit n block) -> Some (Vdist.dirac (s 1))
    | Value.Tag ("ce", Value.Int 1) when Action.equal a (commit n block) -> Some (Vdist.dirac (s 2))
    | Value.Tag ("ce", Value.Int 2) when Action.equal a acc -> Some (Vdist.dirac (s 3))
    | _ -> None
  in
  Psioa.make ~name:(n ^ ".cenv") ~start:(s 0) ~signature ~transition
