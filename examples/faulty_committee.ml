(* Fault injection on the dynamic committee.

   Crashes in the committee PCA are free inputs — no standard scheduler
   ever fires them. The Fault layer turns them into first-class adversarial
   behaviour: Fault.crash_stop wraps any PSIOA with a crash action,
   Fault.injector makes the committee's crash inputs schedulable, and
   Fault.budget caps the total number of injected faults, so "commit
   probability under at most k crashes" is a single exact reach_prob query.

   Run with:  dune exec examples/faulty_committee.exe *)

open Cdse

let n = "cmt"

let () =
  Pretty.section "1. Crash-stop wrapping (any PSIOA)";
  (* A tiny counter, wrapped: the crash action is an extra input, the dead
     state absorbs everything and controls nothing. *)
  let counter = Workloads.counter ~bound:2 "k" in
  let wrapped = Fault.crash_stop counter in
  let crash = Fault.crash_action "k" in
  (match Psioa.validate wrapped with
  | Ok () -> Format.printf "crash_stop(counter) validates (Definition 2.1)@."
  | Error e -> failwith e);
  let dead = List.hd (Dist.support (Psioa.step wrapped (Psioa.start wrapped) crash)) in
  Format.printf "dead state controls %d actions (signature shrank to inputs)@."
    (Action_set.cardinal (Sigs.local (Psioa.signature wrapped dead)));
  (* With zero faults the wrapper is trace-equivalent to the original. *)
  let td a = Measure.trace_dist a (Scheduler.bounded 4 (Scheduler.uniform a)) ~depth:5 in
  Format.printf "trace distance to the unwrapped counter: %s@."
    (Rat.to_string (Stat.tv_distance (td counter) (td wrapped)));

  Pretty.section "2. Commit probability vs crash budget (exact rationals)";
  (* One commit round of a 3-validator committee. The injector offers the
     three crash inputs as outputs; budget_sched k caps how many the
     uniform scheduler may actually interleave into the round. *)
  let commit_prob ~quorum ~budget =
    let cmt = Committee.build ~max_validators:3 ~blocks:1 ~quorum n in
    let auto = Pca.psioa cmt in
    let q =
      List.fold_left
        (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
        (Psioa.start auto)
        [ Committee.add n 0; Committee.add n 1; Committee.add n 2;
          Committee.submit n 0; Committee.propose n 0 ]
    in
    let tail =
      Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
        ~transition:(Psioa.transition auto)
    in
    let sys = Compose.pair (Fault.injector ~faults:(List.init 3 (Committee.crash n)) ()) tail in
    (* Fault.budget is the schema-level transformer (Definition 3.2); its
       instances are exactly budget_sched-wrapped schedulers. *)
    let schema =
      Fault.budget budget
        (Schema.make ~name:"uniform" (fun a -> [ Scheduler.bounded 12 (Scheduler.uniform a) ]))
    in
    let sched = List.hd (Schema.instantiate schema sys) in
    let pred = function
      | Value.Pair (_, qc) -> Committee.committed cmt qc = [ 0 ]
      | _ -> false
    in
    Measure.reach_prob ~memo:true sys sched ~depth:12 ~pred
  in
  Pretty.table
    ~header:[ "crash budget"; "P(commit) unanimity"; "P(commit) quorum 2-of-3" ]
    (List.map
       (fun budget ->
         [ string_of_int budget;
           Rat.to_string (commit_prob ~quorum:`All ~budget);
           Rat.to_string (commit_prob ~quorum:(`At_least 2) ~budget) ])
       [ 0; 1; 2 ]);
  print_endline
    "A 2-of-3 quorum commits with probability exactly 1 under any single crash;\n\
     unanimity already wedges (the chair waits forever for the dead validator's\n\
     vote — the liveness failure documented in committee.mli).";

  Pretty.section "3. Budgeted measures degrade gracefully";
  (* The same query under an engine budget: the measure truncates but
     accounts for every dropped cone — mass + deficit = 1 exactly. *)
  let cmt = Committee.build ~max_validators:3 ~blocks:1 ~quorum:(`At_least 2) n in
  let auto = Pca.psioa cmt in
  let q =
    List.fold_left
      (fun q a -> List.hd (Dist.support (Psioa.step auto q a)))
      (Psioa.start auto)
      [ Committee.add n 0; Committee.add n 1; Committee.add n 2;
        Committee.submit n 0; Committee.propose n 0 ]
  in
  let tail =
    Psioa.make ~name:"round" ~start:q ~signature:(Psioa.signature auto)
      ~transition:(Psioa.transition auto)
  in
  let sys = Compose.pair (Fault.injector ~faults:(List.init 3 (Committee.crash n)) ()) tail in
  let sched = Fault.budget_sched 1 (Scheduler.bounded 12 (Scheduler.uniform sys)) in
  (match Measure.exec_dist_budgeted ~max_execs:40 sys sched ~depth:12 with
  | `Exact d -> Format.printf "exact: %d executions@." (Dist.size d)
  | `Truncated (d, lost) ->
      Format.printf "truncated to %d executions; kept mass %s + deficit %s = %s@."
        (Dist.size d)
        (Rat.to_string (Dist.mass d))
        (Rat.to_string lost)
        (Rat.to_string (Rat.add (Dist.mass d) lost)));
  print_endline "faulty_committee: done"
