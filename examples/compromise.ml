(* Dynamic compromise: members that turn adversarial mid-run.

   A crash merely silences a member; a *compromise* swaps its transition
   function for an adversary-controlled one over the same state space —
   the threat model of the dynamic-compromise literature, where a
   protocol must keep emulating its ideal functionality as long as at
   most k of n members are taken over. Fault.compromise makes the
   takeover a library combinator, Fault.injector puts it under scheduler
   control, and Fault.compromise_budget meters takeovers k-of-n, so
   "does emulation survive k compromised members?" is one exact
   Emulation.check query.

   Run with:  dune exec examples/compromise.exe *)

open Cdse

let () =
  Pretty.section "1. Takeover and restore (any PSIOA)";
  (* A tiny counter taken over mid-count. The adversarial automaton is an
     arbitrary reinterpretation of the member over the same state space;
     here it leaks the current count instead of incrementing it. *)
  let counter = Workloads.counter ~bound:2 "k" in
  let leak k = Action.make ~payload:(Value.int k) "k.leak" in
  let leaky =
    Psioa.make ~name:"k.adv" ~start:(Psioa.start counter)
      ~signature:(fun q ->
        match q with
        | Value.Tag ("ctr", Value.Int k) when k < 2 ->
            Sigs.make ~input:Action_set.empty
              ~output:(Action_set.of_list [ leak k ])
              ~internal:Action_set.empty
        | _ -> Sigs.empty)
      ~transition:(fun q a ->
        match q with
        | Value.Tag ("ctr", Value.Int k) when k < 2 && Action.equal a (leak k) ->
            Some (Vdist.dirac q)
        | _ -> None)
  in
  let wrapped = Fault.compromise ~adversarial:leaky counter in
  (match Psioa.validate wrapped with
  | Ok () -> Format.printf "compromise(counter) validates (Definition 2.1)@."
  | Error e -> failwith e);
  let step1 q a = List.hd (Dist.support (Psioa.step wrapped q a)) in
  let q = step1 (Psioa.start wrapped) (Action.make "k.inc") in
  let q = step1 q (Fault.compromise_action "k") in
  Format.printf "after the takeover: compromised=%b, k.leak enabled=%b, k.inc enabled=%b@."
    (Option.is_some (Fault.is_compromised q))
    (Psioa.is_enabled wrapped q (leak 1))
    (Psioa.is_enabled wrapped q (Action.make "k.inc"));
  let q = step1 q (Fault.restore_action "k") in
  Format.printf "after restore: counter resumes from its current state (%s enabled)@."
    (if Psioa.is_enabled wrapped q (Action.make "k.inc") then "k.inc" else "nothing");
  (* With zero takeovers injected the wrapper is trace-equivalent. *)
  let td a = Measure.trace_dist a (Scheduler.bounded 4 (Scheduler.uniform a)) ~depth:5 in
  Format.printf "trace distance to the unwrapped counter: %s@."
    (Rat.to_string (Stat.tv_distance (td counter) (td wrapped)));
  (* Adversary.silent_takeover is the degenerate payload: it keeps only
     the member's inputs. A counter has none, so the silenced member's
     signature empties — it is destroyed (no restore is ever offered, and
     PCA configuration reduction may remove it), exactly the
     signature-emptiness discipline fault.mli documents. *)
  let silenced = Fault.compromise ~adversarial:(Adversary.silent_takeover counter) counter in
  let qs =
    List.hd
      (Dist.support
         (Psioa.step silenced (Psioa.start silenced) (Fault.compromise_action "k")))
  in
  Format.printf "silent takeover of an input-free member destroys it: signature empty=%b@."
    (Sigs.is_empty (Psioa.signature silenced qs));

  Pretty.section "2. A channel that leaks once compromised (tolerance k = 0)";
  (* The one-time-pad channel with a compromised mode that transmits the
     plaintext in the clear. The environment plays the guess game of
     secure_channel.ml; the budget schema caps takeovers. One takeover is
     already fatal: the adversary reads the message and the simulator
     cannot reproduce the guess, so the slack jumps to exactly 1/2. *)
  let check_channel k =
    let wrapped =
      Fault.compromise
        ~adversarial:(Structured.psioa (Secure_channel.real_leaky "sc"))
        (Structured.psioa (Secure_channel.real "sc"))
    in
    let sys = Compose.pair (Fault.injector ~faults:[ Fault.compromise_action "sc" ] ()) wrapped in
    let eact q =
      Action_set.filter
        (fun a -> List.mem (Action.name a) [ "sc.send"; "sc.recv" ])
        (Sigs.ext (Psioa.signature sys q))
    in
    Emulation.check
      ~schema:(Fault.compromise_budget k)
      ~insight_of:Insight.accept
      ~envs:[ Secure_channel.env_guess ~msg:1 "sc" ]
      ~eps:Rat.zero ~q1:14 ~q2:14 ~depth:16
      ~adversaries:[ Secure_channel.adversary "sc" ]
      ~sim_for:(fun _ -> Secure_channel.simulator "sc")
      ~real:(Structured.make sys ~eact) ~ideal:(Secure_channel.ideal "sc")
  in
  Pretty.table ~header:[ "budget k"; "holds"; "slack" ]
    (List.map
       (fun k ->
         let v = check_channel k in
         [ string_of_int k; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst ])
       [ 0; 1 ]);

  Pretty.section "3. A committee that tolerates k = 1 (quorum 2-of-3)";
  (* Each validator is wrapped with a silent takeover; the 2-of-3 quorum
     absorbs one silenced vote, so the slack stays exactly 0 through
     k = 1 and jumps to exactly 1 at k = 2 — the tolerance threshold of
     the protocol, recovered by the checker as a step function. *)
  let nobody =
    Psioa.make ~name:"nobody" ~start:Value.unit
      ~signature:(fun _ -> Sigs.empty)
      ~transition:(fun _ _ -> None)
  in
  let is_retire a =
    (* first_enabled would otherwise retire the whole committee before
       any block is submitted (retire sorts before submit). *)
    String.length (Action.name a) >= 10 && String.sub (Action.name a) 0 10 = "cmt.retire"
  in
  let check_committee k =
    let cmt =
      Committee.build ~max_validators:3 ~blocks:1 ~quorum:(`At_least 2)
        ~wrap_validator:(fun _ v ->
          Fault.compromise ~adversarial:(Adversary.silent_takeover v) v)
        "cmt"
    in
    let inj =
      Fault.injector
        ~faults:(List.init 3 (fun i -> Fault.compromise_action (Committee.validator_name "cmt" i)))
        ()
    in
    let real = Committee.structured_psioa (Compose.pair inj (Pca.psioa cmt)) "cmt" in
    let bound = 20 in
    Impl.approx_le
      ~schema:(Fault.compromise_budget ~avoid:is_retire k)
      ~insight_of:Insight.accept
      ~envs:[ Committee.env_commit ~block:0 "cmt" ]
      ~eps:Rat.zero ~q1:bound ~q2:bound ~depth:(bound + 2)
      ~a:(Emulation.hidden_system ~max_states:800 ~max_depth:bound real nobody)
      ~b:
        (Emulation.hidden_system ~max_states:800 ~max_depth:bound
           (Committee.ideal ~blocks:1 "cmt") nobody)
  in
  Pretty.table ~header:[ "budget k"; "holds"; "slack" ]
    (List.map
       (fun k ->
         let v = check_committee k in
         [ string_of_int k; string_of_bool v.Impl.holds; Rat.to_string v.Impl.worst ])
       [ 0; 1; 2 ]);
  print_endline
    "The OTP channel tolerates no compromise at all (k = 0); the quorum\n\
     committee tolerates exactly one. Both thresholds fall out of the same\n\
     budgeted emulation query, with the slack exact on either side.";
  print_endline "compromise: done"
