(* Command-line driver for the cdse library.

     cdse_cli validate            — validate the built-in workload automata
     cdse_cli measure  [...]      — exact execution measure of a workload
     cdse_cli emulate  [...]      — secure-emulation check (channel/coin)
     cdse_cli d1       [...]      — dummy-adversary insertion (Lemma D.1)
     cdse_cli churn    [...]      — dynamic subchain churn driver *)

open Cdse
open Cmdliner

(* ----------------------------------------------------------------- shared *)

let exit_flag ok = if ok then 0 else 1

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Collect engine observability counters (lib/obs) during the run and print a report afterwards")

(* Run [f] with stats collection if requested; the report goes to stdout
   after the command's own output. *)
let run_with_stats stats f =
  if not stats then f ()
  else begin
    let r, snap = Obs.with_stats f in
    Format.printf "-- stats --@.%a@." Obs.report snap;
    r
  end

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run (lib/obs Trace) and write it to \
           $(docv) as Chrome trace-event JSON — load in chrome://tracing or \
           https://ui.perfetto.dev for a per-domain timeline. A text timing \
           summary (barrier-wait, merge, imbalance attribution) is printed \
           to stdout.")

(* Run [f] under span tracing if requested. The Chrome JSON goes to [file];
   the self-profiling summary goes to stdout after the command's own
   output. Composes with [run_with_stats] in either nesting order. *)
let run_with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Trace.start ();
      let r = Fun.protect ~finally:Trace.stop f in
      Trace.write_chrome file;
      Format.printf "-- trace --@.%a@.wrote %s@." Trace.pp_summary (Trace.summary ())
        file;
      Trace.clear ();
      r

(* --------------------------------------------------------------- validate *)

let validate_cmd =
  let run () =
    let automata =
      [ Cdse_gen.Workloads.coin "coin";
        Cdse_gen.Workloads.counter "counter";
        Cdse_gen.Workloads.channel "chan";
        Structured.psioa (Cdse_gen.Sworkloads.relay "relay");
        Structured.psioa (Secure_channel.real "sc");
        Structured.psioa (Secure_channel.ideal "sc");
        Structured.psioa (Coin_flip.real "cf");
        Structured.psioa (Coin_flip.ideal "cf") ]
    in
    let ok =
      List.for_all
        (fun a ->
          match Psioa.validate ~max_states:500 a with
          | Ok () ->
              Format.printf "ok    %s@." (Psioa.name a);
              true
          | Error e ->
              Format.printf "FAIL  %s: %s@." (Psioa.name a) e;
              false)
        automata
    in
    let system = Dynamic_system.build () in
    let ok =
      ok
      &&
      match Pca.check_constraints ~max_states:300 ~max_depth:5 system with
      | Ok () ->
          Format.printf "ok    subchain-system (PCA constraints, Def 2.16)@.";
          true
      | Error e ->
          Format.printf "FAIL  subchain-system: %s@." e;
          false
    in
    exit_flag ok
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate the built-in workload automata")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- measure *)

let depth_arg =
  Arg.(value & opt int 6 & info [ "depth" ] ~docv:"N" ~doc:"Exploration depth")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Expand the cone across $(docv) OCaml domains (bit-identical results)")

let compress_arg =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("hcons", `Hcons); ("quotient", `Quotient) ]) `Off
    & info [ "compress" ] ~docv:"LEVEL"
        ~doc:
          "State-space compression: off (historical engine), hcons \
           (hash-consed states, identical results) or quotient (on-the-fly \
           bisimulation quotient of each frontier layer; trace-exact, \
           compressed execution support)")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("layered", `Layered); ("subtree", `Subtree) ]) `Auto
    & info [ "engine" ] ~docv:"E"
        ~doc:
          "Multicore engine: auto (barrier-free subtree work-stealing when \
           the run needs no layer synchronization, layered otherwise), \
           layered (force layer-synchronous sharding) or subtree (force \
           barrier-free; rejects budgeted/quotient runs). Bit-identical \
           results either way; ignored at --domains 1")

let measure_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("coin", `Coin); ("relay", `Relay); ("random", `Random) ]) `Coin
      & info [ "workload" ] ~docv:"W" ~doc:"Workload: coin, relay or random")
  in
  let sched_kind =
    Arg.(
      value
      & opt (enum [ ("first", `First); ("uniform", `Uniform); ("round-robin", `Rr) ]) `Uniform
      & info [ "sched" ] ~docv:"S" ~doc:"Scheduler: first, uniform or round-robin")
  in
  let run workload sched_kind depth seed domains engine compress stats trace =
    let auto =
      match workload with
      | `Coin -> Cdse_gen.Workloads.coin "coin"
      | `Relay ->
          Compose.pair
            (Cdse_gen.Sworkloads.relay_env ~proto_name:"relay" "env")
            (Structured.psioa (Cdse_gen.Sworkloads.relay "relay"))
      | `Random -> Cdse_gen.Random_auto.make ~rng:(Rng.make seed) ~name:"rnd" ()
    in
    let sched =
      match sched_kind with
      | `First -> Scheduler.first_enabled auto
      | `Uniform -> Scheduler.uniform auto
      | `Rr -> Scheduler.round_robin auto
    in
    let d =
      run_with_trace trace (fun () ->
          run_with_stats stats (fun () ->
              Measure.exec_dist ~engine ~domains ~compress auto
                (Scheduler.bounded depth sched) ~depth))
    in
    Format.printf "%d completed executions, total mass %s@." (Dist.size d)
      (Rat.to_string (Dist.mass d));
    List.iter
      (fun (e, p) ->
        Format.printf "  p=%-8s %s@." (Rat.to_string p)
          (String.concat " · " (List.map Action.to_string (Exec.actions e))))
      (Dist.items d);
    0
  in
  Cmd.v
    (Cmd.info "measure" ~doc:"Exact execution measure of a workload under a scheduler")
    Term.(
      const run $ workload $ sched_kind $ depth_arg $ seed_arg $ domains_arg
      $ engine_arg $ compress_arg $ stats_arg $ trace_arg)

(* ---------------------------------------------------------------- emulate *)

let emulate_cmd =
  let protocol =
    Arg.(
      value
      & opt
          (enum
             [ ("channel", `Channel); ("coin-flip", `Coin); ("secret-share", `Share);
               ("broadcast", `Broadcast) ])
          `Channel
      & info [ "protocol" ] ~docv:"P"
          ~doc:"Protocol: channel, coin-flip, secret-share or broadcast")
  in
  let broken =
    Arg.(value & flag & info [ "broken" ] ~doc:"Use the broken real protocol (expected to fail)")
  in
  let compromise =
    Arg.(
      value & opt (some int) None
      & info [ "compromise" ] ~docv:"K"
          ~doc:
            "Channel only: wrap the real channel with a mid-run adversarial \
             takeover (the compromised channel leaks the plaintext) and check \
             emulation under a budget of $(docv) takeovers. Expected to hold \
             iff $(docv) = 0.")
  in
  let run protocol broken compromise stats trace =
    match (compromise, protocol) with
    | Some _, (`Coin | `Share | `Broadcast) ->
        Format.eprintf "error: --compromise applies to --protocol channel only@.";
        2
    | _ ->
    let v =
      run_with_trace trace @@ fun () ->
      run_with_stats stats @@ fun () ->
      match protocol with
      | `Channel when compromise <> None ->
          let k = Option.get compromise in
          let base = if broken then Secure_channel.real_leaky "sc" else Secure_channel.real "sc" in
          let wrapped =
            Fault.compromise
              ~adversarial:(Structured.psioa (Secure_channel.real_leaky "sc"))
              (Structured.psioa base)
          in
          let inj = Fault.injector ~faults:[ Fault.compromise_action "sc" ] () in
          let sys = Compose.pair inj wrapped in
          let eact q =
            Action_set.filter
              (fun a ->
                let b = Action.name a in
                String.equal b "sc.send" || String.equal b "sc.recv")
              (Sigs.ext (Psioa.signature sys q))
          in
          Emulation.check
            ~schema:(Fault.compromise_budget k)
            ~insight_of:Insight.accept
            ~envs:[ Secure_channel.env_guess ~msg:1 "sc" ]
            ~eps:Rat.zero ~q1:14 ~q2:14 ~depth:16
            ~adversaries:[ Secure_channel.adversary "sc" ]
            ~sim_for:(fun _ -> Secure_channel.simulator "sc")
            ~real:(Structured.make sys ~eact) ~ideal:(Secure_channel.ideal "sc")
      | `Channel ->
          let real = if broken then Secure_channel.real_leaky "sc" else Secure_channel.real "sc" in
          Emulation.check
            ~schema:(Schema.deterministic ~bound:12)
            ~insight_of:Insight.accept
            ~envs:[ Secure_channel.env_guess ~msg:1 "sc" ]
            ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14
            ~adversaries:[ Secure_channel.adversary "sc" ]
            ~sim_for:(fun _ -> Secure_channel.simulator "sc")
            ~real ~ideal:(Secure_channel.ideal "sc")
      | `Coin ->
          let real = if broken then Coin_flip.real_cheating "cf" else Coin_flip.real "cf" in
          Emulation.check
            ~schema:(Schema.deterministic ~bound:14)
            ~insight_of:Insight.accept
            ~envs:[ Coin_flip.env_result "cf" ]
            ~eps:Rat.zero ~q1:14 ~q2:14 ~depth:16 ~adversaries:[ Coin_flip.adversary "cf" ]
            ~sim_for:(fun _ -> Coin_flip.simulator "cf")
            ~real ~ideal:(Coin_flip.ideal "cf")
      | `Share ->
          let real = if broken then Secret_share.transparent "ss" else Secret_share.real "ss" in
          Emulation.check
            ~schema:(Schema.deterministic ~bound:12)
            ~insight_of:Insight.accept
            ~envs:[ Secret_share.env_guess ~secret:1 "ss" ]
            ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14 ~adversaries:[ Secret_share.adversary "ss" ]
            ~sim_for:(fun _ -> Secret_share.simulator "ss")
            ~real ~ideal:(Secret_share.ideal "ss")
      | `Broadcast ->
          (* No broken variant: --broken is ignored for broadcast. *)
          let k = 2 in
          Emulation.check
            ~schema:(Schema.deterministic ~bound:12)
            ~insight_of:Insight.accept
            ~envs:[ Broadcast.env_all_delivered ~k ~msg:1 "bc" ]
            ~eps:Rat.zero ~q1:12 ~q2:12 ~depth:14 ~adversaries:[ Broadcast.adversary ~k "bc" ]
            ~sim_for:(fun _ -> Broadcast.simulator ~k "bc")
            ~real:(Broadcast.real ~k "bc") ~ideal:(Broadcast.ideal ~k "bc")
    in
    (match compromise with
    | Some k -> Format.printf "compromise budget: %d takeover%s@." k (if k = 1 then "" else "s")
    | None -> ());
    Format.printf "secure emulation holds: %b (worst distance %s)@." v.Impl.holds
      (Rat.to_string v.Impl.worst);
    List.iter (fun (s, d) -> Format.printf "  %s -> %s@." s (Rat.to_string d)) v.Impl.detail;
    let expected =
      (not broken) && match compromise with Some k -> k = 0 | None -> true
    in
    exit_flag (v.Impl.holds = expected)
  in
  Cmd.v
    (Cmd.info "emulate" ~doc:"Check dynamic secure emulation (Definition 4.26)")
    Term.(const run $ protocol $ broken $ compromise $ stats_arg $ trace_arg)

(* --------------------------------------------------------------------- d1 *)

let d1_cmd =
  let alphabet =
    Arg.(value & opt int 2 & info [ "alphabet" ] ~docv:"K" ~doc:"Relay message alphabet size")
  in
  let run alphabet depth =
    let alphabet = List.init (max 1 alphabet) Fun.id in
    let g = Dummy.prefix_renaming "g." in
    let setup =
      Forwarding.make_setup
        ~structured:(Cdse_gen.Sworkloads.relay ~alphabet "proto")
        ~g
        ~env:(Cdse_gen.Sworkloads.relay_env ~alphabet ~proto_name:"proto" "env")
        ~adv:
          (Cdse_gen.Sworkloads.relay_adversary ~alphabet ~proto_name:"proto"
             ~rename:(fun n -> "g." ^ n)
             "adv")
        ()
    in
    let report =
      Forwarding.check_lemma_d1 setup ~insight_of:Insight.accept
        ~sched:(Scheduler.uniform (Forwarding.lhs setup))
        ~q1:depth ~depth
    in
    Format.printf "dummy insertion distance: %s (exact: %b), q1=%d q2=%d@."
      (Rat.to_string report.Forwarding.distance)
      report.Forwarding.exact report.Forwarding.lhs_steps report.Forwarding.rhs_steps;
    exit_flag report.Forwarding.exact
  in
  Cmd.v
    (Cmd.info "d1" ~doc:"Dummy-adversary insertion check (Lemma D.1)")
    Term.(const run $ alphabet $ depth_arg)

(* -------------------------------------------------------------------- dot *)

let dot_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("coin", `Coin); ("relay", `Relay); ("channel", `Channel); ("subchain", `Subchain) ]) `Coin
      & info [ "workload" ] ~docv:"W" ~doc:"Workload: coin, relay, channel or subchain")
  in
  let table = Arg.(value & flag & info [ "table" ] ~doc:"Emit a text transition table instead of DOT") in
  let run workload table =
    let auto =
      match workload with
      | `Coin -> Cdse_gen.Workloads.coin "coin"
      | `Relay -> Structured.psioa (Cdse_gen.Sworkloads.relay "relay")
      | `Channel -> Cdse_gen.Workloads.channel "chan"
      | `Subchain ->
          Pca.psioa (Dynamic_system.build ~n_subchains:1 ~tx_values:[ 1 ] ~max_total:3 ())
    in
    print_string
      (if table then Dump.to_table ~max_states:200 auto else Dump.to_dot ~max_states:200 auto);
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render a workload automaton as Graphviz DOT (or a text table)")
    Term.(const run $ workload $ table)

(* ------------------------------------------------------------------ bisim *)

let bisim_cmd =
  let run () =
    let checks =
      [ ("coin ~ coin", Cdse_gen.Workloads.coin "c", Cdse_gen.Workloads.coin "c");
        ( "fair ~ biased(1/3)",
          Cdse_gen.Workloads.coin "c",
          Cdse_gen.Workloads.coin ~p:(Rat.of_ints 1 3) "c" );
        ("slow-child ~ fast-child", Cdse_gen.Monotone.child_slow, Cdse_gen.Monotone.child_fast) ]
    in
    List.iter
      (fun (name, a, b) -> Format.printf "%-24s %b@." name (Bisim.bisimilar a b))
      checks;
    0
  in
  Cmd.v
    (Cmd.info "bisim" ~doc:"Strong probabilistic bisimulation demos")
    Term.(const run $ const ())

(* -------------------------------------------------------------- committee *)

let committee_cmd =
  let validators =
    Arg.(value & opt int 3 & info [ "validators" ] ~docv:"N" ~doc:"Validator budget")
  in
  let quorum =
    Arg.(value & opt (some int) None & info [ "quorum" ] ~docv:"T" ~doc:"Commit threshold (default: unanimity)")
  in
  let run validators quorum =
    let q = match quorum with Some t -> `At_least t | None -> `All in
    let cmt = Committee.build ~max_validators:validators ~blocks:1 ~quorum:q "cmt" in
    let auto = Pca.psioa cmt in
    (match Pca.check_constraints ~max_states:300 ~max_depth:5 cmt with
    | Ok () -> print_endline "PCA constraints: ok"
    | Error e -> Format.printf "PCA constraints: FAIL %s@." e);
    let step st a = List.hd (Dist.support (Psioa.step auto st a)) in
    let st = Psioa.start auto in
    let st = List.fold_left step st (List.init validators (Committee.add "cmt")) in
    let st = List.fold_left step st [ Committee.submit "cmt" 0; Committee.propose "cmt" 0 ] in
    let st =
      List.fold_left step st (List.init validators (fun i -> Committee.vote "cmt" i 0))
    in
    let st = step st (Committee.commit "cmt" 0) in
    Format.printf "committed blocks after one round with %d validators: [%s]@." validators
      (String.concat "; " (List.map string_of_int (Committee.committed cmt st)));
    0
  in
  Cmd.v
    (Cmd.info "committee" ~doc:"Drive the dynamic voting committee through one round")
    Term.(const run $ validators $ quorum)

(* ------------------------------------------------------------------ churn *)

let churn_cmd =
  let subchains =
    Arg.(value & opt int 4 & info [ "subchains" ] ~docv:"N" ~doc:"Subchain budget")
  in
  let steps = Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"N" ~doc:"Driver steps") in
  let run subchains steps seed obs_stats trace =
    let system = Dynamic_system.build ~n_subchains:subchains ~max_total:(6 * subchains) () in
    let stats =
      run_with_trace trace (fun () ->
          run_with_stats obs_stats (fun () ->
              Dynamic_system.drive ~restart:true system ~rng:(Rng.make seed) ~steps))
    in
    Format.printf "steps %d, created %d, destroyed %d, max alive %d, ledger total %d@."
      stats.Dynamic_system.steps_taken stats.Dynamic_system.creations
      stats.Dynamic_system.destructions stats.Dynamic_system.max_alive
      stats.Dynamic_system.final_total;
    0
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"Drive the dynamic subchain PCA under random churn")
    Term.(const run $ subchains $ steps $ seed_arg $ stats_arg $ trace_arg)

let () =
  let info =
    Cmd.info "cdse_cli" ~version:"1.0.0"
      ~doc:"Composable dynamic secure emulation — checkers and drivers"
  in
  exit (Cmd.eval' (Cmd.group info [ validate_cmd; measure_cmd; emulate_cmd; d1_cmd; churn_cmd; dot_cmd; bisim_cmd; committee_cmd ]))
