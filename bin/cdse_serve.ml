(* cdse_serve — measure-as-a-service daemon.

   Binds a Unix socket and serves newline-delimited JSON requests (see
   Serve's protocol grammar, or the "Serving" section of the README):

     echo '{"id":1,"op":"measure","model":{"kind":"coin"},
            "sched":{"kind":"uniform"},"depth":3}' \
       | socat - UNIX-CONNECT:/tmp/cdse.sock

   Runs until a wire "shutdown" request (or SIGINT/SIGTERM, which trigger
   the same graceful drain: queued and in-flight queries still reply). *)

open Cdse
open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/cdse.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket path to bind (an existing file is replaced).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Default domain count per query (requests may override with \
           their \"domains\" field). Concurrent multicore queries batch \
           onto one domain-pool budget.")

let workers_arg =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Executor threads draining the job queue.")

let cache_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:"Result-cache capacity (LRU eviction beyond it).")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission cap: measure-bearing requests beyond $(docv) queued \
           jobs are rejected with an \"overloaded\" error.")

let run socket domains workers cache_cap max_queue =
  if domains < 1 || workers < 1 || cache_cap < 1 || max_queue < 1 then begin
    Format.eprintf
      "error: --domains, --workers, --cache-cap and --max-queue must be >= 1@.";
    2
  end
  else begin
    let server =
      try
        Serve.start ~domains ~workers ~cache_cap ~max_queue ~socket ()
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "error: cannot bind %s: %s@." socket
          (Unix.error_message e);
        exit 2
    in
    (* The handler may run on any of the server's own threads (whichever
       polls first), and [stop] joins them — so hand the stop to a fresh
       thread instead of risking a self-join. *)
    let graceful _ =
      ignore (Thread.create (fun () -> Serve.stop server) ())
    in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful)
     with Invalid_argument _ -> ());
    Format.printf "cdse_serve: listening on %s (domains=%d workers=%d)@."
      socket domains workers;
    Serve.wait server;
    Format.printf "cdse_serve: shut down cleanly@.";
    0
  end

let () =
  let info =
    Cmd.info "cdse_serve" ~version:"dev"
      ~doc:
        "Measure-as-a-service daemon: exact execution measures, \
         reachability and secure-emulation checks over a Unix socket, \
         with model hash-consing, result caching and incremental \
         deepening."
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ socket_arg $ domains_arg $ workers_arg $ cache_cap_arg
            $ max_queue_arg)))
